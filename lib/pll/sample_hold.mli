(** Sample-and-hold phase detector — the paper's "extension to arbitrary
    PFDs is possible", carried out for the other common detector type.

    Instead of a narrow charge pulse (≈ Dirac impulse), a sample-and-hold
    detector holds the sampled phase error for the *whole* reference
    period (a PFD followed by a sampled integrator / S&H pump). Its LPTV
    operator is "impulse-train sample, then convolve with a unit
    rectangle": the HTM is [H_zoh(s)·(ω₀/2π)·l·lᵀ] with
    [H_zoh(s) = (1 − e^{−sT})/s] — still rank one, so the whole
    Sherman–Morrison program goes through:

    - per-band open loop [A_sh(s) = A(s)·(1 − e^{−sT})/(sT)],
    - effective open loop
      [λ_sh(s) = ((1 − e^{−sT})/T)·Σ_m Q(s + jmω₀)], [Q(s) = A(s)/s]
      rational — so λ_sh has an *exact* coth closed form too,
    - baseband closed loop [H₀₀ = A_sh/(1 + λ_sh)].

    The exact discrete-time counterpart is the classical zero-order-hold
    discretization [x⁺ = Φx + Γe], and the impulse-invariance identity
    becomes [L(e^{jωT}) = λ_sh(jω)] — property-tested, as for the
    impulse PFD.

    The hold trades margin differently from the impulse pump: its ≈T/2
    delay costs phase margin *earlier* (already ~37° vs ~50° at
    [ω_UG/ω₀ = 0.1] for the 55° design), but its sinc-shaped magnitude
    rolloff attenuates the aliased gain terms, so the margin degrades
    *gracefully* instead of collapsing at the Gardner bound — see the
    PFD-comparison experiment. *)

(** [a_of_s pll s] — per-band open-loop gain [A_sh(s)]. *)
val a_of_s : Pll.t -> Numeric.Cx.t -> Numeric.Cx.t

(** [lambda_fn pll method_] — effective open-loop gain evaluator. *)
val lambda_fn : Pll.t -> Pll.lambda_method -> Numeric.Cx.t -> Numeric.Cx.t

val lambda : Pll.t -> Numeric.Cx.t -> Numeric.Cx.t

(** [h00 pll s] — baseband closed loop. *)
val h00 : Pll.t -> Numeric.Cx.t -> Numeric.Cx.t

(** [htm pll] — the full composition tree (generic machinery
    cross-check): [H_VCO·H_LF·H_zoh·H_sampler]. *)
val htm : Pll.t -> Htm_core.Htm.t

(** [closed_loop_htm pll] — [(I+G)^{-1}G] via truncated LU. *)
val closed_loop_htm : Pll.t -> Htm_core.Htm.t

(** {1 Exact discrete-time model (ZOH)} *)

type discrete = {
  phi : Numeric.Rmat.t;
  gamma : float array;
  c : float array;
  period : float;
}

(** [discretize pll] — exact ZOH state update over one period. *)
val discretize : Pll.t -> discrete

(** [open_loop_z m] is [L(z) = C(zI−Φ)^{-1}Γ]. *)
val open_loop_z : discrete -> Lti.Zdomain.t

(** [open_loop_response m w] is [L(e^{jwT})] (equals [λ_sh(jw)]). *)
val open_loop_response : discrete -> float -> Numeric.Cx.t

(** [closed_loop_poles m] — eigenvalues of [Φ − Γ·C]. *)
val closed_loop_poles : discrete -> Numeric.Cx.t list

val is_stable : ?tol:float -> Pll.t -> bool
