type spec = {
  fref : float;
  n_div : float;
  icp : float;
  kvco : float;
  ratio : float;
  phase_margin_deg : float;
}

let default_spec =
  {
    fref = 1.0e6;
    n_div = 64.0;
    icp = 100.0e-6;
    kvco = 20.0e6;
    ratio = 0.1;
    phase_margin_deg = 55.0;
  }

let gamma_of_phase_margin pm_deg =
  if pm_deg <= 0.0 || pm_deg >= 90.0 then
    invalid_arg "Design.gamma_of_phase_margin: need 0 < pm < 90";
  tan (Numeric.Stats.rad (45.0 +. (pm_deg /. 2.0)))

let omega_ug spec = spec.ratio *. 2.0 *. Float.pi *. spec.fref

let with_ratio spec r = { spec with ratio = r }

let synthesize spec =
  if spec.ratio <= 0.0 then invalid_arg "Design.synthesize: ratio must be positive";
  let gamma = gamma_of_phase_margin spec.phase_margin_deg in
  let w_ug = omega_ug spec in
  let v0 = spec.kvco /. (spec.n_div *. spec.fref) in
  (* |A(j w_ug)| = 1 with A(s) = fref*v0*Icp/Ctot * (1+s/wz)/(s^2 (1+s/wp))
     and the gamma placement gives |A(j w_ug)| = K0 * gamma / w_ug^2 *)
  let ctotal = spec.fref *. v0 *. spec.icp *. gamma /. (w_ug *. w_ug) in
  let r, c1, c2 =
    Loop_filter.synthesize_second_order ~omega_ug:w_ug ~gamma ~ctotal
  in
  let filter =
    Loop_filter.make (Loop_filter.Second_order { r; c1; c2 }) ~icp:spec.icp
  in
  let vco = Vco.time_invariant ~kvco:spec.kvco ~n_div:spec.n_div ~fref:spec.fref in
  Pll.make ~fref:spec.fref ~n_div:spec.n_div ~filter ~vco ()

