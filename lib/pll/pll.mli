(** PLL assembly and the paper's closed-form input-output solution (§4).

    The open-loop HTM is [G(s) = H_VCO(s)·H_LF(s)·H_PFD(s)] (eq. 27).
    Because the sampling-PFD HTM is rank one, the closed loop collapses
    by Sherman–Morrison–Woodbury (eqs. 29–34) to

    [θ(s) = Ṽ(s)·lᵀ/(1 + λ(s)) · θ_ref(s)]

    with [Ṽ(s) = (ω₀/2π)·H_VCO·H_LF·l] and effective open-loop gain
    [λ(s) = lᵀ·Ṽ(s)]. For a time-invariant VCO this reduces to eq. 36:
    [H_{n,m}(s) = A(s + jnω₀)/(1 + λ(s))],
    [λ(s) = Σ_m A(s + jmω₀)], where [A(s) = (ω₀/2π)(v₀/s)H_LF(s)] is
    the classical continuous-time LTI open loop (eq. 35).

    λ(s) is evaluated either by symmetric truncation of the sum or
    *exactly* via partial fractions of [A] and the coth-based lattice
    sums of {!Numeric.Special} — the paper's "symbolic expressions". *)

type t = {
  fref : float;  (** reference frequency, Hz *)
  n_div : float;  (** feedback division ratio *)
  filter : Loop_filter.t;
  vco : Vco.t;
  pfd : Pfd.t;
}

val make :
  fref:float -> n_div:float -> filter:Loop_filter.t -> vco:Vco.t -> ?pfd:Pfd.t -> unit -> t

val omega0 : t -> float
val period : t -> float

(** {1 Classical LTI open loop} *)

(** [open_loop_tf p] is [A(s)] (eq. 35). *)
val open_loop_tf : t -> Lti.Tf.t

(** [a_of_s p s] evaluates [A(s)]. *)
val a_of_s : t -> Numeric.Cx.t -> Numeric.Cx.t

(** {1 Effective open loop λ(s)} *)

type lambda_method =
  | Exact  (** partial fractions + coth lattice sums; no truncation *)
  | Truncated of int  (** symmetric truncation, m from -k to k *)

(** [lambda_fn p method_] — precomputes the expansion and returns an
    evaluator for λ(s). The [Exact] evaluator costs O(#poles) per
    point. *)
val lambda_fn : t -> lambda_method -> Numeric.Cx.t -> Numeric.Cx.t

(** [lambda p s] — [Exact] evaluation (convenience; re-expands each
    call — use {!lambda_fn} in sweeps). *)
val lambda : t -> Numeric.Cx.t -> Numeric.Cx.t

(** {1 Closed-loop transfers (time-invariant VCO closed form)} *)

(** [h00_fn p method_] — evaluator for the baseband-to-baseband
    closed-loop element [H₀₀(s) = A(s)/(1 + λ(s))] (eq. 38). *)
val h00_fn : t -> lambda_method -> Numeric.Cx.t -> Numeric.Cx.t

val h00 : t -> Numeric.Cx.t -> Numeric.Cx.t

(** [htm_element_fn p method_] — evaluator for the full closed-loop HTM
    element [H_{n,m}(s) = A(s + jnω₀)/(1 + λ(s))] (eq. 36; independent
    of [m]). *)
val htm_element_fn : t -> lambda_method -> n:int -> Numeric.Cx.t -> Numeric.Cx.t

(** [h00_lti p s] — the classical LTI approximation [A/(1+A)] (the
    second form of eq. 38). *)
val h00_lti : t -> Numeric.Cx.t -> Numeric.Cx.t

(** {1 Generic HTM forms (work for time-varying VCOs too)} *)

(** [open_loop_htm p] — [G = H_VCO·H_LF·H_PFD] as a composition tree. *)
val open_loop_htm : t -> Htm_core.Htm.t

(** [closed_loop_htm p] — [(I+G)^{-1}G] via truncated LU (eq. 28). *)
val closed_loop_htm : t -> Htm_core.Htm.t

(** [closed_loop_plan ctx p] — {!closed_loop_htm} compiled for
    grid-batched evaluation ({!Htm_core.Plan}). When the VCO is time
    invariant and the PFD is the sampler (and [exact_lambda] is left
    [true], the default), the plan's rank-one feedback uses the {b
    exact} λ(s) of eq. 37 (partial fractions + coth lattice sums) in
    place of the truncated Sherman–Morrison denominator [vᵀu]: the
    planned H₀₀ then matches {!h00} to rounding rather than to the
    truncation tail. Each concurrent lane needs its own plan — see the
    ownership rule in [Parallel.Sweep.grid_local]. *)
val closed_loop_plan : ?exact_lambda:bool -> Htm_core.Htm.ctx -> t -> Htm_core.Plan.t

(** [closed_loop_rank_one ctx p s] — the Sherman–Morrison closed form
    evaluated with truncated matrices (eqs. 29–34): valid for any VCO
    ISF as long as the PFD is the sampler; O(dim²) instead of the LU's
    O(dim³).
    @raise Invalid_argument when the PFD is not [Sampling]. *)
val closed_loop_rank_one : Htm_core.Htm.ctx -> t -> Numeric.Cx.t -> Numeric.Cmat.t

(** [v_tilde ctx p s] — the vector [Ṽ(s)] of eq. 29. *)
val v_tilde : Htm_core.Htm.ctx -> t -> Numeric.Cx.t -> Numeric.Cvec.t

(** [lambda_matrix ctx p s] — λ(s) computed as the sum of all entries of
    the truncated [H_VCO·H_LF] (eq. 33 / eq. 37); cross-check for
    {!lambda_fn}. *)
val lambda_matrix : Htm_core.Htm.ctx -> t -> Numeric.Cx.t -> Numeric.Cx.t
