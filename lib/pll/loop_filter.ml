open Lti

type topology =
  | Second_order of { r : float; c1 : float; c2 : float }
  | Third_order of { r : float; c1 : float; c2 : float; r3 : float; c3 : float }
  | Custom of Tf.t

type t = { topology : topology; icp : float }

let make topology ~icp =
  if icp <= 0.0 then invalid_arg "Loop_filter.make: icp must be positive";
  (match topology with
  | Second_order { r; c1; c2 } ->
      if r <= 0.0 || c1 <= 0.0 || c2 <= 0.0 then
        invalid_arg "Loop_filter.make: components must be positive"
  | Third_order { r; c1; c2; r3; c3 } ->
      if r <= 0.0 || c1 <= 0.0 || c2 <= 0.0 || r3 <= 0.0 || c3 <= 0.0 then
        invalid_arg "Loop_filter.make: components must be positive"
  | Custom _ -> ());
  { topology; icp }

let of_netlist netlist ~icp ?(sense = 1) () =
  make (Custom (Circuit.Mna.transimpedance netlist ~inject:1 ~sense)) ~icp

let second_order_impedance ~r ~c1 ~c2 =
  (* Z = (R + 1/sC1) || (1/sC2) = (1 + sRC1) / (s (C1+C2) (1 + sRCs)),
     Cs = C1 C2 / (C1 + C2) *)
  let ctot = c1 +. c2 in
  let cs = c1 *. c2 /. ctot in
  Tf.make ~num:[ 1.0; r *. c1 ] ~den:[ 0.0; ctot; ctot *. r *. cs ]

let impedance f =
  match f.topology with
  | Second_order { r; c1; c2 } -> second_order_impedance ~r ~c1 ~c2
  | Third_order { r; c1; c2; r3; c3 } ->
      Tf.mul
        (second_order_impedance ~r ~c1 ~c2)
        (Tf.make ~num:[ 1.0 ] ~den:[ 1.0; r3 *. c3 ])
  | Custom z -> z

let tf f = Tf.scale f.icp (impedance f)

let zero_freq f =
  match f.topology with
  | Second_order { r; c1; _ } | Third_order { r; c1; _ } -> 1.0 /. (r *. c1)
  | Custom _ -> invalid_arg "Loop_filter.zero_freq: custom topology"

let pole_freq f =
  match f.topology with
  | Second_order { r; c1; c2 } | Third_order { r; c1; c2; _ } ->
      let cs = c1 *. c2 /. (c1 +. c2) in
      1.0 /. (r *. cs)
  | Custom _ -> invalid_arg "Loop_filter.pole_freq: custom topology"

let synthesize_second_order ~omega_ug ~gamma ~ctotal =
  if gamma <= 1.0 then
    invalid_arg "Loop_filter.synthesize_second_order: gamma must exceed 1";
  (* pole/zero ratio: omega_p/omega_z = (C1+C2)/C2 = gamma^2 *)
  let c2 = ctotal /. (gamma *. gamma) in
  let c1 = ctotal -. c2 in
  let omega_z = omega_ug /. gamma in
  let r = 1.0 /. (omega_z *. c1) in
  (r, c1, c2)

let pp ppf f =
  match f.topology with
  | Second_order { r; c1; c2 } ->
      Format.fprintf ppf "2nd-order CP filter: R=%.4g Ω, C1=%.4g F, C2=%.4g F, Icp=%.4g A"
        r c1 c2 f.icp
  | Third_order { r; c1; c2; r3; c3 } ->
      Format.fprintf ppf
        "3rd-order CP filter: R=%.4g Ω, C1=%.4g F, C2=%.4g F, R3=%.4g Ω, C3=%.4g F, Icp=%.4g A"
        r c1 c2 r3 c3 f.icp
  | Custom z -> Format.fprintf ppf "custom transimpedance %a, Icp=%.4g A" Tf.pp z f.icp
