open Numeric

let zoh_shape ~period s =
  (* (1 - e^{-sT}) / (sT), with the s -> 0 limit filled *)
  let st = Cx.mul s (Cx.of_float period) in
  if Cx.abs st < 1e-8 then
    (* series: 1 - sT/2 + (sT)^2/6 *)
    Cx.add Cx.one
      (Cx.add
         (Cx.scale (-0.5) st)
         (Cx.scale (1.0 /. 6.0) (Cx.mul st st)))
  else Cx.div (Cx.sub Cx.one (Cx.exp (Cx.neg st))) st

let a_of_s p s =
  Cx.mul (Pll.a_of_s p s) (zoh_shape ~period:(Pll.period p) s)

(* Q(s) = A(s)/s is rational and strictly proper: its lattice sum has a
   coth closed form, and lambda_sh(s) = (1 - e^{-sT})/T * sum_m Q(s+jmw0) *)
let lambda_fn p method_ =
  let w0 = Pll.omega0 p in
  let period = Pll.period p in
  let prefactor s =
    Cx.scale (1.0 /. period) (Cx.sub Cx.one (Cx.exp (Cx.neg (Cx.mul s (Cx.of_float period)))))
  in
  match method_ with
  | Pll.Truncated terms ->
      fun s ->
        let acc = ref (a_of_s p s) in
        for m = 1 to terms do
          let shift = Cx.jomega (float_of_int m *. w0) in
          (* the zoh shape is w0-periodic along jw up to the 1/(s+jmw0)
             factor, so sum the per-band gains directly *)
          acc := Cx.add !acc (Cx.add (a_of_s p (Cx.add s shift)) (a_of_s p (Cx.sub s shift)))
        done;
        !acc
  | Pll.Exact ->
      let q =
        Rat.mul (Lti.Tf.to_rat (Pll.open_loop_tf p)) (Rat.inv Rat.s)
      in
      if not (Rat.is_strictly_proper q) then
        invalid_arg "Sample_hold.lambda_fn: chain must be strictly proper";
      let expansion = Partial_fraction.expand q in
      fun s ->
        let lattice =
          List.fold_left
            (fun acc { Partial_fraction.pole; order; residue } ->
              Cx.add acc
                (Cx.mul residue
                   (Special.harmonic_sum ~k:order ~omega0:w0 (Cx.sub s pole))))
            Cx.zero expansion.Partial_fraction.terms
        in
        Cx.mul (prefactor s) lattice

let lambda p s = lambda_fn p Pll.Exact s

let h00 p s = Cx.div (a_of_s p s) (Cx.add Cx.one (lambda p s))

let htm p =
  let period = Pll.period p in
  (* per band: sampler contributes 1/T, the filter/VCO chain contributes
     T*A(s+jnw0), and the hold contributes its normalized pulse shape
     (1 - e^{-sT})/(sT) — together the per-band gain A_sh of the
     documentation *)
  Htm_core.Htm.series_list
    [
      Vco.htm p.Pll.vco;
      Htm_core.Htm.lti (Lti.Tf.eval (Loop_filter.tf p.Pll.filter));
      Htm_core.Htm.lti (fun s -> zoh_shape ~period s);
      Htm_core.Htm.sampler;
    ]

let closed_loop_htm p = Htm_core.Htm.feedback (htm p)

type discrete = {
  phi : Rmat.t;
  gamma : float array;
  c : float array;
  period : float;
}

let discretize p =
  if not (Vco.is_time_invariant p.Pll.vco) then
    invalid_arg "Sample_hold.discretize: requires a time-invariant VCO";
  let period = Pll.period p in
  (* held error drives the chain A(s) (the per-period charge of the S&H
     pump matches the impulse pump's, so the chain gain is exactly A) *)
  let ss = Lti.Ss.of_tf (Pll.open_loop_tf p) in
  let phi, gamma = Lti.Ss.discretize ss ~dt:period in
  { phi; gamma; c = ss.Lti.Ss.c; period }

let open_loop_z m =
  Lti.Zdomain.from_state_space ~phi:m.phi ~b:m.gamma ~c:m.c

let open_loop_response m w =
  Lti.Zdomain.freq_response (open_loop_z m) ~period:m.period w

let closed_loop_poles m =
  let n = Rmat.rows m.phi in
  let gc = Rmat.init n n (fun i k -> m.gamma.(i) *. m.c.(k)) in
  Rmat.eigenvalues (Rmat.sub m.phi gc)

let is_stable ?(tol = 1e-9) p =
  List.for_all
    (fun z -> Cx.abs z < 1.0 -. tol)
    (closed_loop_poles (discretize p))
