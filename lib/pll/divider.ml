type t = { ratio : float }

let make ratio =
  if ratio <= 0.0 then invalid_arg "Divider.make: ratio must be positive";
  { ratio }

let time_shift_gain _ = 1.0
let radian_gain d = 1.0 /. d.ratio
let htm _ = Htm_core.Htm.identity
let to_radians _ ~fref theta = 2.0 *. Float.pi *. fref *. theta

let vco_radians_of_time_shift d ~fref theta =
  2.0 *. Float.pi *. d.ratio *. fref *. theta
