type t =
  | Num of float
  | Sym of string
  | Add of t list
  | Mul of t list
  | Pow of t * int
  | App of func * t

and func = Coth | Exp | Sin | Cos | Log

let num x = Num x
let sym s = Sym s
let zero = Num 0.0
let one = Num 1.0

let is_num = function Num _ -> true | _ -> false
let num_value = function
  | Num x -> x
  | _ -> invalid_arg "Expr.num_value: not a numeric constant"

let sum terms =
  let flat =
    List.concat_map (function Add ts -> ts | e -> [ e ]) terms
  in
  let constant, rest =
    List.fold_left
      (fun (c, acc) e -> if is_num e then (c +. num_value e, acc) else (c, e :: acc))
      (0.0, []) flat
  in
  let rest = List.rev rest in
  let terms =
    if Float.equal constant 0.0 then rest else rest @ [ Num constant ]
  in
  match terms with [] -> zero | [ e ] -> e | ts -> Add ts

let add a b = sum [ a; b ]

let prod factors =
  let flat =
    List.concat_map (function Mul fs -> fs | e -> [ e ]) factors
  in
  let constant, rest =
    List.fold_left
      (fun (c, acc) e -> if is_num e then (c *. num_value e, acc) else (c, e :: acc))
      (1.0, []) flat
  in
  let rest = List.rev rest in
  if Float.equal constant 0.0 then zero
  else begin
    let factors =
      if Float.equal constant 1.0 then rest else Num constant :: rest
    in
    match factors with [] -> one | [ e ] -> e | fs -> Mul fs
  end

let mul a b = prod [ a; b ]
let neg e = mul (Num (-1.0)) e
let sub a b = add a (neg b)

let pow base n =
  match (base, n) with
  | _, 0 -> one
  | e, 1 -> e
  | Num x, n -> Num (x ** float_of_int n)
  | Pow (b, m), n -> Pow (b, m * n)
  | e, n -> Pow (e, n)

let inv e = pow e (-1)
let div a b = mul a (inv b)

let app f e =
  match (f, e) with
  | Exp, Num 0.0 -> one
  | Sin, Num 0.0 -> zero
  | Cos, Num 0.0 -> one
  | Log, Num 1.0 -> zero
  | _ -> App (f, e)

let coth e = app Coth e
let exp e = app Exp e
let sin e = app Sin e
let cos e = app Cos e
let log e = app Log e

let rec eval env e =
  let open Numeric in
  match e with
  | Num x -> Cx.of_float x
  | Sym s -> env s
  | Add ts -> List.fold_left (fun acc t -> Cx.add acc (eval env t)) Cx.zero ts
  | Mul fs -> List.fold_left (fun acc f -> Cx.mul acc (eval env f)) Cx.one fs
  | Pow (b, n) -> Cx.pow_int (eval env b) n
  | App (Coth, x) -> Special.coth (eval env x)
  | App (Exp, x) -> Cx.exp (eval env x)
  | App (Sin, x) ->
      let z = eval env x in
      (* sin z = (e^{jz} - e^{-jz}) / 2j *)
      Cx.div
        (Cx.sub (Cx.exp (Cx.mul Cx.j z)) (Cx.exp (Cx.neg (Cx.mul Cx.j z))))
        (Cx.scale 2.0 Cx.j)
  | App (Cos, x) ->
      let z = eval env x in
      Cx.scale 0.5
        (Cx.add (Cx.exp (Cx.mul Cx.j z)) (Cx.exp (Cx.neg (Cx.mul Cx.j z))))
  | App (Log, x) -> Cx.log (eval env x)

let eval_real env e =
  let z = eval (fun s -> Numeric.Cx.of_float (env s)) e in
  if Float.abs (Numeric.Cx.im z) > 1e-9 *. (1.0 +. Numeric.Cx.abs z) then
    invalid_arg "Expr.eval_real: expression has an imaginary part";
  Numeric.Cx.re z

let rec derivative ~wrt e =
  match e with
  | Num _ -> zero
  | Sym s -> if s = wrt then one else zero
  | Add ts -> sum (List.map (derivative ~wrt) ts)
  | Mul fs ->
      (* product rule over the n-ary product *)
      sum
        (List.mapi
           (fun i _ ->
             prod (List.mapi (fun k f -> if k = i then derivative ~wrt f else f) fs))
           fs)
  | Pow (b, n) ->
      prod [ Num (float_of_int n); pow b (n - 1); derivative ~wrt b ]
  | App (Coth, x) ->
      (* d coth = 1 - coth^2 *)
      mul (sub one (pow (coth x) 2)) (derivative ~wrt x)
  | App (Exp, x) -> mul (exp x) (derivative ~wrt x)
  | App (Sin, x) -> mul (cos x) (derivative ~wrt x)
  | App (Cos, x) -> mul (neg (sin x)) (derivative ~wrt x)
  | App (Log, x) -> mul (inv x) (derivative ~wrt x)

let rec subst name replacement e =
  match e with
  | Num _ -> e
  | Sym s -> if s = name then replacement else e
  | Add ts -> sum (List.map (subst name replacement) ts)
  | Mul fs -> prod (List.map (subst name replacement) fs)
  | Pow (b, n) -> pow (subst name replacement b) n
  | App (f, x) -> app f (subst name replacement x)

let symbols e =
  let rec go acc = function
    | Num _ -> acc
    | Sym s -> s :: acc
    | Add ts | Mul ts -> List.fold_left go acc ts
    | Pow (b, _) -> go acc b
    | App (_, x) -> go acc x
  in
  List.sort_uniq compare (go [] e)

let equal a b = a = b

let rec size = function
  | Num _ | Sym _ -> 1
  | Add ts | Mul ts -> List.fold_left (fun acc t -> acc + size t) 1 ts
  | Pow (b, _) -> 1 + size b
  | App (_, x) -> 1 + size x

let func_name = function
  | Coth -> "coth"
  | Exp -> "exp"
  | Sin -> "sin"
  | Cos -> "cos"
  | Log -> "log"

(* precedence: Add 1, Mul 2, Pow 3, atoms 4 *)
let rec print ~prec buf e =
  let open Buffer in
  let paren p body =
    if p < prec then begin
      add_char buf '(';
      body ();
      add_char buf ')'
    end
    else body ()
  in
  match e with
  | Num x ->
      if x < 0.0 then paren 1 (fun () -> add_string buf (Printf.sprintf "%g" x))
      else add_string buf (Printf.sprintf "%g" x)
  | Sym s -> add_string buf s
  | Add ts ->
      paren 1 (fun () ->
          List.iteri
            (fun i t ->
              if i > 0 then add_string buf " + ";
              print ~prec:1 buf t)
            ts)
  | Mul fs ->
      paren 2 (fun () ->
          List.iteri
            (fun i f ->
              if i > 0 then add_char buf '*';
              print ~prec:3 buf f)
            fs)
  | Pow (b, n) ->
      paren 3 (fun () ->
          print ~prec:4 buf b;
          add_string buf (Printf.sprintf "^%d" n))
  | App (f, x) ->
      add_string buf (func_name f);
      add_char buf '(';
      print ~prec:0 buf x;
      add_char buf ')'

let to_string e =
  let buf = Buffer.create 64 in
  print ~prec:0 buf e;
  Buffer.contents buf

let pp ppf e = Format.pp_print_string ppf (to_string e)
