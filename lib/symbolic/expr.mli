(** Symbolic expressions.

    The paper stresses that the HTM/rank-one approach "can be used to
    obtain both numerical results and symbolic expressions". This module
    is the expression substrate for that claim: a small computer-algebra
    core over named parameters (component values, ω₀, the Laplace
    variable), with constant folding, differentiation, substitution and
    complex-valued evaluation. {!Sym_pll} builds the paper's λ(s) on top
    of it as a closed-form expression in [coth].

    Expressions are kept in a lightly canonical form: sums and products
    are flattened and constants folded, so structurally equal
    derivations compare equal in the common cases (full canonical
    normalization is not attempted — numeric evaluation is the ground
    truth for equivalence). *)

type t =
  | Num of float
  | Sym of string
  | Add of t list  (** flattened n-ary sum, at least two terms *)
  | Mul of t list  (** flattened n-ary product, at least two factors *)
  | Pow of t * int  (** integer powers, exponent ≠ 0, 1 *)
  | App of func * t

and func = Coth | Exp | Sin | Cos | Log

(** {1 Smart constructors} — fold constants, flatten, drop identities. *)

val num : float -> t
val sym : string -> t
val add : t -> t -> t
val sum : t list -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val prod : t list -> t
val div : t -> t -> t
val pow : t -> int -> t
val inv : t -> t
val coth : t -> t
val exp : t -> t
val sin : t -> t
val cos : t -> t
val log : t -> t
val zero : t
val one : t

(** {1 Operations} *)

(** [eval env e] — complex evaluation; [env] maps symbol names.
    @raise Not_found for unbound symbols. *)
val eval : (string -> Numeric.Cx.t) -> t -> Numeric.Cx.t

(** [eval_real env e] — real evaluation (imaginary part must vanish). *)
val eval_real : (string -> float) -> t -> float

(** [derivative ~wrt e] — symbolic partial derivative. *)
val derivative : wrt:string -> t -> t

(** [subst name replacement e] — capture-free substitution. *)
val subst : string -> t -> t -> t

(** [symbols e] — free symbols, sorted, without duplicates. *)
val symbols : t -> string list

(** [equal a b] — structural equality of the canonical forms (sound but
    incomplete: [false] does not imply semantic difference). *)
val equal : t -> t -> bool

(** [size e] — node count (for sanity bounds in tests). *)
val size : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
