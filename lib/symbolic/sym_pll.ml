open Expr

(* component symbols *)
let s = sym "s"
let icp = sym "Icp"
let kv = sym "Kv"
let n_div = sym "N"
let fref = sym "fref"
let r = sym "R"
let c1 = sym "C1"
let c2 = sym "C2"

(* derived quantities *)
let ctot = add c1 c2
let cs = div (mul c1 c2) ctot
let omega_p = inv (mul r cs)
let omega0 = prod [ num (2.0 *. Float.pi); fref ]

(* loop gain scale: K0 = Icp*Kv/(N*Ctot); the sampler's w0/2pi = fref
   and the VCO sensitivity v0 = Kv/(N*fref) multiply to Kv/N *)
let k0 = div (mul icp kv) (mul n_div ctot)

(* A(s) = K0 (1 + s R C1) / (s^2 (1 + s R Cs)) *)
let a_expr =
  div
    (mul k0 (add one (prod [ s; r; c1 ])))
    (mul (pow s 2) (add one (prod [ s; r; cs ])))

(* Partial fractions of A: with g(s) = K0 (1 + sRC1)/(1 + sRCs),
   A = g(s)/s^2 = r20/s^2 + r10/s + r1p/(s + wp):
     r20 = g(0) = K0
     r10 = g'(0) = K0 R (C1 - Cs)
     r1p = N(-wp)/D'(-wp) with D = s^2 (1 + sRCs):
           D'(-wp) = wp^2 R Cs, N(-wp) = K0 (1 - wp R C1) *)
type residues = { r20 : Expr.t; r10 : Expr.t; r1p : Expr.t; pole : Expr.t }

let residues =
  let r20 = k0 in
  let r10 = prod [ k0; r; sub c1 cs ] in
  let r1p =
    div
      (mul k0 (sub one (prod [ omega_p; r; c1 ])))
      (prod [ pow omega_p 2; r; cs ])
  in
  { r20; r10; r1p; pole = omega_p }

(* lattice sums in closed form: S1(z) = (pi/w0) coth(pi z / w0),
   S2(z) = (pi/w0)^2 (coth^2 - 1) since csch^2 = coth^2 - 1 *)
let ratio = div (num Float.pi) omega0
let warg z = mul ratio z
let s1_of z = mul ratio (coth (warg z))
let s2_of z = mul (pow ratio 2) (sub (pow (coth (warg z)) 2) one)

let lambda_expr =
  sum
    [
      mul residues.r20 (s2_of s);
      mul residues.r10 (s1_of s);
      mul residues.r1p (s1_of (add s residues.pole));
    ]

let h00_expr = div a_expr (add one lambda_expr)
let h00_lti_expr = div a_expr (add one a_expr)

let env_of_components ~icp ~kvco ~n_div ~fref ~r ~c1 ~c2 ~s name =
  let open Numeric in
  match name with
  | "s" -> s
  | "Icp" -> Cx.of_float icp
  | "Kv" -> Cx.of_float kvco
  | "N" -> Cx.of_float n_div
  | "fref" -> Cx.of_float fref
  | "R" -> Cx.of_float r
  | "C1" -> Cx.of_float c1
  | "C2" -> Cx.of_float c2
  | other -> invalid_arg ("Sym_pll.env: unknown symbol " ^ other)

let env_of_pll pll ~s =
  match pll.Pll_lib.Pll.filter.Pll_lib.Loop_filter.topology with
  | Pll_lib.Loop_filter.Second_order { r; c1; c2 } ->
      let fref = pll.Pll_lib.Pll.fref in
      let n_div = pll.Pll_lib.Pll.n_div in
      let v0 = pll.Pll_lib.Pll.vco.Pll_lib.Vco.v0 in
      env_of_components
        ~icp:pll.Pll_lib.Pll.filter.Pll_lib.Loop_filter.icp
        ~kvco:(v0 *. n_div *. fref) ~n_div ~fref ~r ~c1 ~c2 ~s
  | _ ->
      invalid_arg "Sym_pll.env_of_pll: needs a second-order charge-pump filter"

let eval_lambda pll s = Expr.eval (env_of_pll pll ~s) lambda_expr
let eval_h00 pll s = Expr.eval (env_of_pll pll ~s) h00_expr

let sensitivity expr ~wrt pll ~s =
  Expr.eval (env_of_pll pll ~s) (Expr.derivative ~wrt expr)
