(** Symbolic derivation of the paper's closed forms for the
    second-order charge-pump PLL.

    Everything is expressed over the named parameters

    [s, Icp, Kv, N, fref, R, C1, C2]

    with derived quantities folded in symbolically. The effective
    open-loop gain comes out as a finite closed-form expression in
    [coth] — the "symbolic expressions" the paper advertises:

    [λ(s) = r₂₀·(π/ω₀)²·(coth²(πs/ω₀) − 1)
          + r₁₀·(π/ω₀)·coth(πs/ω₀)
          + r₁ₚ·(π/ω₀)·coth(π(s+ω_p)/ω₀)]

    where [r₂₀, r₁₀, r₁ₚ] are the residues of the partial-fraction
    expansion of [A(s)] at the double pole at the origin and the filter
    pole [−ω_p]. Every expression here is validated in the test suite
    against the independent numeric pipeline ({!Pll_lib.Pll}). *)

(** Residues and pole of the open loop, as expressions in the component
    symbols. *)
type residues = {
  r20 : Expr.t;  (** double pole at the origin, order-2 coefficient *)
  r10 : Expr.t;  (** double pole at the origin, order-1 coefficient *)
  r1p : Expr.t;  (** simple pole at [−ω_p] *)
  pole : Expr.t;  (** [ω_p = 1/(R·C_s)] *)
}

val residues : residues

(** [a_expr] — the classical open loop [A(s)] (eq. 35). *)
val a_expr : Expr.t

(** [lambda_expr] — the exact effective open-loop gain (eq. 37) in
    closed form. *)
val lambda_expr : Expr.t

(** [h00_expr] — [A/(1+λ)] (eq. 38). *)
val h00_expr : Expr.t

(** [h00_lti_expr] — the textbook [A/(1+A)]. *)
val h00_lti_expr : Expr.t

(** [env_of_components ~icp ~kvco ~n_div ~fref ~r ~c1 ~c2 ~s] — an
    evaluation environment binding every symbol. *)
val env_of_components :
  icp:float ->
  kvco:float ->
  n_div:float ->
  fref:float ->
  r:float ->
  c1:float ->
  c2:float ->
  s:Numeric.Cx.t ->
  string ->
  Numeric.Cx.t

(** [env_of_pll pll ~s] — environment from an assembled PLL.
    @raise Invalid_argument unless the filter is [Second_order]. *)
val env_of_pll : Pll_lib.Pll.t -> s:Numeric.Cx.t -> string -> Numeric.Cx.t

(** [eval_lambda pll s] / [eval_h00 pll s] — evaluate the symbolic
    expressions on a concrete design. *)
val eval_lambda : Pll_lib.Pll.t -> Numeric.Cx.t -> Numeric.Cx.t

val eval_h00 : Pll_lib.Pll.t -> Numeric.Cx.t -> Numeric.Cx.t

(** [sensitivity expr ~wrt pll ~s] — evaluate [∂expr/∂wrt] on a design:
    symbolic differentiation makes parametric design sensitivities
    (e.g. [∂λ/∂R]) one-liners. *)
val sensitivity :
  Expr.t -> wrt:string -> Pll_lib.Pll.t -> s:Numeric.Cx.t -> Numeric.Cx.t
