(* The typed error vocabulary of the numerical-robustness layer.

   Every guarded failure mode in the solver stack maps to exactly one
   constructor: ill-conditioned or exactly singular linear algebra,
   iterative methods that ran out of budget, non-finite values escaping
   a kernel, netlist syntax errors, and pool tasks that kept throwing
   after retries. Hot APIs expose [_checked] variants returning
   [(_, t) result]; the [Error] exception carries the same payload for
   the few places where raising is the only option. *)

type t =
  | Singular of { cond_est : float; context : string }
      (* [cond_est] is a 1-norm condition estimate; [infinity] when a
         pivot was exactly zero (no finite estimate exists). *)
  | Non_convergence of { iters : int; residual : float }
  | Non_finite of { where : string }
  | Parse of { file : string; line : int; col : int; msg : string }
  | Worker_failure of { task : int; attempts : int; last : string }
  | Timed_out of { task : int; seconds : float }
  | Cancelled of { reason : string }
  | Overloaded of { retry_after : float }
  | Io_timeout of { seconds : float; what : string }
  | Budget_exhausted of { budget_s : float; attempts : int }
  | Circuit_open of { cooldown_s : float }

exception Error of t

let raise_ t = raise (Error t)

let to_string = function
  | Singular { cond_est; context } ->
      if Float.is_finite cond_est then
        Printf.sprintf "%s: matrix is numerically singular (cond ~ %.3e)"
          context cond_est
      else Printf.sprintf "%s: matrix is exactly singular (zero pivot)" context
  | Non_convergence { iters; residual } ->
      Printf.sprintf
        "iteration failed to converge after %d iterations (residual %.3e)"
        iters residual
  | Non_finite { where } ->
      Printf.sprintf "%s: non-finite value (NaN/Inf) in result" where
  | Parse { file; line; col; msg } ->
      Printf.sprintf "%s:%d:%d: parse error: %s" file line (col + 1) msg
  | Worker_failure { task; attempts; last } ->
      Printf.sprintf "task %d failed after %d attempt(s): %s" task attempts last
  | Timed_out { task; seconds } ->
      Printf.sprintf "task %d exceeded its %g s watchdog timeout" task seconds
  | Cancelled { reason } -> Printf.sprintf "cancelled (%s) before execution" reason
  | Overloaded { retry_after } ->
      Printf.sprintf "server overloaded; retry after %.3f s" retry_after
  | Io_timeout { seconds; what } ->
      Printf.sprintf "%s timed out after %g s" what seconds
  | Budget_exhausted { budget_s; attempts } ->
      Printf.sprintf "retry budget of %g s exhausted after %d attempt(s)"
        budget_s attempts
  | Circuit_open { cooldown_s } ->
      Printf.sprintf
        "circuit breaker open; next probe allowed in %.3f s" cooldown_s

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Caret-context snippet for parse errors: the offending source line
   with a '^' under the offending column. *)
let parse_snippet ~src = function
  | Parse { line; col; _ } when line >= 1 -> (
      let lines = String.split_on_char '\n' src in
      match List.nth_opt lines (line - 1) with
      | None -> None
      | Some text ->
          let text =
            (* strip a trailing CR from CRLF sources *)
            let n = String.length text in
            if n > 0 && text.[n - 1] = '\r' then String.sub text 0 (n - 1)
            else text
          in
          let col = Stdlib.min (Stdlib.max 0 col) (String.length text) in
          Some (Printf.sprintf "  %s\n  %s^" text (String.make col ' ')))
  | _ -> None

let () =
  Printexc.register_printer (function
    | Error t -> Some ("Pllscope_error.Error: " ^ to_string t)
    | _ -> None)
