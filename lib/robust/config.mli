(** Runtime knobs of the robustness layer.

    All flags are atomics (pool workers read them); set them once at
    process start, before launching parallel work. *)

(** Strict mode: guarded failures raise {!Pllscope_error.Error} instead
    of degrading to the dense oracle. Off by default; the CLI arms it
    with [--strict]. *)
val set_strict : bool -> unit

val is_strict : unit -> bool

(** Master switch for the numerical guards (condition estimates,
    finiteness scans). On by default; benchmarks turn it off to measure
    the unguarded baseline. With guards off the structured path behaves
    exactly as before this layer existed. *)
val set_guard_checks : bool -> unit

val guards_enabled : unit -> bool

(** 1-norm condition-number threshold above which LU-backed solves are
    declared numerically singular (default 1e12). *)
val set_max_cond : float -> unit

val get_max_cond : unit -> float

(** Threshold for the closed-form feedback denominator guard
    ([(1 + |vᵀu|) / |1 + vᵀu|] for Sherman–Morrison–Woodbury, the
    analogous ratio for diagonal feedback); default 1e12. *)
val set_smw_max_cond : float -> unit

val get_smw_max_cond : unit -> float

(** Restore every knob to its default. *)
val reset : unit -> unit
