(* Runtime knobs of the robustness layer.

   All flags are atomics so pool workers read a consistent value; they
   are meant to be set once at process start (CLI flags, bench setup,
   test fixtures) before any parallel work is launched. *)

let strict = Atomic.make false
let set_strict b = Atomic.set strict b
let is_strict () = Atomic.get strict

let guard_checks = Atomic.make true
let set_guard_checks b = Atomic.set guard_checks b
let guards_enabled () = Atomic.get guard_checks

(* 1-norm condition number above which an LU-backed solve is declared
   numerically singular. 1e12 leaves ~4 trustworthy digits in double
   precision — past that the structured fast path's answer is noise and
   the dense oracle fallback is the honest choice. *)
let default_max_cond = 1e12

let max_cond = Atomic.make default_max_cond

let set_max_cond c =
  if not (c > 1.0) then invalid_arg "Config.set_max_cond: threshold must be > 1";
  Atomic.set max_cond c

let get_max_cond () = Atomic.get max_cond

(* Guard threshold for the closed-form feedback denominators (diagonal
   [1+d] and Sherman–Morrison–Woodbury [1 + vᵀu]): the proxy condition
   number [(1 + |vᵀu|) / |1 + vᵀu|] must stay below this. *)
let smw_max_cond = Atomic.make default_max_cond

let set_smw_max_cond c =
  if not (c > 1.0) then
    invalid_arg "Config.set_smw_max_cond: threshold must be > 1";
  Atomic.set smw_max_cond c

let get_smw_max_cond () = Atomic.get smw_max_cond

let reset () =
  Atomic.set strict false;
  Atomic.set guard_checks true;
  Atomic.set max_cond default_max_cond;
  Atomic.set smw_max_cond default_max_cond
