(* Per-run counters of the robustness machinery.

   Counters are atomics: guard sites fire from pool worker domains.
   [snapshot] is a plain record so callers (the CLI, tests) can diff
   before/after a run; [reset] starts a fresh run. *)

type t = {
  dense_fallbacks : int;
  singular_guards : int;
  nonfinite_guards : int;
  non_convergences : int;
  pool_retries : int;
  worker_failures : int;
  task_timeouts : int;
  cancelled_points : int;
  resumed_points : int;
}

let dense_fallbacks = Atomic.make 0
let singular_guards = Atomic.make 0
let nonfinite_guards = Atomic.make 0
let non_convergences = Atomic.make 0
let pool_retries = Atomic.make 0
let worker_failures = Atomic.make 0
let task_timeouts = Atomic.make 0
let cancelled_points = Atomic.make 0
let resumed_points = Atomic.make 0

let snapshot () =
  {
    dense_fallbacks = Atomic.get dense_fallbacks;
    singular_guards = Atomic.get singular_guards;
    nonfinite_guards = Atomic.get nonfinite_guards;
    non_convergences = Atomic.get non_convergences;
    pool_retries = Atomic.get pool_retries;
    worker_failures = Atomic.get worker_failures;
    task_timeouts = Atomic.get task_timeouts;
    cancelled_points = Atomic.get cancelled_points;
    resumed_points = Atomic.get resumed_points;
  }

let reset () =
  Atomic.set dense_fallbacks 0;
  Atomic.set singular_guards 0;
  Atomic.set nonfinite_guards 0;
  Atomic.set non_convergences 0;
  Atomic.set pool_retries 0;
  Atomic.set worker_failures 0;
  Atomic.set task_timeouts 0;
  Atomic.set cancelled_points 0;
  Atomic.set resumed_points 0

let total s =
  s.dense_fallbacks + s.singular_guards + s.nonfinite_guards
  + s.non_convergences + s.pool_retries + s.worker_failures + s.task_timeouts
  + s.cancelled_points + s.resumed_points

(* Classify the triggering error so the snapshot says *why* the dense
   oracle was consulted, not just how often. *)
let record_fallback err =
  Atomic.incr dense_fallbacks;
  match (err : Pllscope_error.t) with
  | Singular _ -> Atomic.incr singular_guards
  | Non_finite _ -> Atomic.incr nonfinite_guards
  | Non_convergence _ -> Atomic.incr non_convergences
  | Parse _ | Worker_failure _ | Timed_out _ | Cancelled _ | Overloaded _
  | Io_timeout _ | Budget_exhausted _ | Circuit_open _ ->
      ()

let record_guard err =
  match (err : Pllscope_error.t) with
  | Singular _ -> Atomic.incr singular_guards
  | Non_finite _ -> Atomic.incr nonfinite_guards
  | Non_convergence _ -> Atomic.incr non_convergences
  | Parse _ | Worker_failure _ | Timed_out _ | Cancelled _ | Overloaded _
  | Io_timeout _ | Budget_exhausted _ | Circuit_open _ ->
      ()

let record_non_convergence () = Atomic.incr non_convergences
let record_retry () = Atomic.incr pool_retries
let record_worker_failure () = Atomic.incr worker_failures
let record_timeout () = Atomic.incr task_timeouts
let record_cancelled () = Atomic.incr cancelled_points

let record_resumed n =
  if n > 0 then ignore (Atomic.fetch_and_add resumed_points n)

(* Fold a snapshot from another process (a farm worker's exit frame)
   into the live counters, so the coordinator's end-of-run summary
   covers the whole farm rather than being per-process-local. *)
let absorb s =
  let add a n = if n > 0 then ignore (Atomic.fetch_and_add a n) in
  add dense_fallbacks s.dense_fallbacks;
  add singular_guards s.singular_guards;
  add nonfinite_guards s.nonfinite_guards;
  add non_convergences s.non_convergences;
  add pool_retries s.pool_retries;
  add worker_failures s.worker_failures;
  add task_timeouts s.task_timeouts;
  add cancelled_points s.cancelled_points;
  add resumed_points s.resumed_points

let pp ppf s =
  Format.fprintf ppf
    "robust: %d dense fallback(s) (%d singular, %d non-finite, %d \
     non-convergent), %d pool retry(ies), %d worker failure(s), %d \
     timeout(s), %d cancelled point(s), %d resumed point(s)"
    s.dense_fallbacks s.singular_guards s.nonfinite_guards s.non_convergences
    s.pool_retries s.worker_failures s.task_timeouts s.cancelled_points
    s.resumed_points
