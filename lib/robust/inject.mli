(** Deterministic, seeded fault injection for robustness testing.

    Guarded kernels call {!fire} at named sites; when the harness is
    disarmed (the default) that is a single atomic load returning
    [false], so production paths pay nothing. Arm it programmatically
    with {!configure}, or via the [PLLSCOPE_INJECT] environment variable
    (read once at startup; [PLLSCOPE_INJECT_SEED] overrides the seed).

    Spec grammar — comma-separated [site:trigger] entries:
    - [site:N] — fire on the N-th hit of that site only (1-based);
    - [site:N+] — fire on the N-th and every subsequent hit;
    - [site:*] — fire on every hit;
    - [site:~P] — fire with probability [P] per hit, drawn from a
      splitmix64 stream seeded per (seed, site), hence reproducible.

    Site names: ["lu-pivot"], ["smat-nan"], ["power-stall"],
    ["pool-task"], ["task-hang"], ["journal-torn"], ["crash-at-point"],
    ["grid-plan-nan"], ["net-torn"], ["net-drop"], ["net-slow"],
    ["stream-disconnect"], ["chunk-torn"], ["stale-key"].
    Example: ["lu-pivot:2,smat-nan:*"]. *)

type site =
  | Lu_pivot  (** force an LU pivot-breakdown in [Cmatf.lu_decompose]. *)
  | Smat_nan  (** poison a structured matvec result with a NaN. *)
  | Power_stall  (** stall the power-iteration update in [Htm]. *)
  | Pool_task  (** throw inside a [Parallel.Pool] task body. *)
  | Task_hang
      (** hang a [Parallel.Pool] task until the watchdog marks it
          overdue (cooperative: the simulated hang polls the abort
          flag). *)
  | Journal_torn
      (** tear a [Runner.Journal] append mid-frame and simulate the
          process dying, leaving a truncated tail on disk. *)
  | Crash_at_point
      (** simulate an abrupt process death right after a sweep point
          has been journaled. *)
  | Grid_plan_nan
      (** poison the root of a planned grid evaluation ([Htm_core.Plan])
          with a NaN after one point's in-place execution, exercising
          the per-point dense-oracle fallback of the plan layer. *)
  | Net_torn
      (** tear a [Serve.Client] request frame mid-write and close the
          connection, so the daemon reads a half-written frame followed
          by EOF. *)
  | Net_drop
      (** drop a [Serve.Client] connection right before the request
          frame is written (models a client killed between connect and
          send). *)
  | Net_slow
      (** stall a [Serve.Client] request write mid-frame (slow-loris
          behaviour), exercising the daemon's per-frame read deadline. *)
  | Stream_disconnect
      (** cut a [Serve.Daemon] streaming connection right after a chunk
          frame has been delivered (models a mid-stream connection
          loss; the client must reconnect and resume by key). *)
  | Chunk_torn
      (** tear a [Serve.Daemon] chunk frame mid-write and close the
          connection, so the client reads a half-written frame followed
          by EOF (torn frames decode as clean EOF by construction). *)
  | Stale_key
      (** make a [Serve.Daemon] request-journal header validation fail,
          modelling an idempotency-key collision: the daemon must
          discard the stale journal and recompute from scratch. *)

(** Raised by the crash-simulation sites ([Journal_torn],
    [Crash_at_point]) to model abrupt process death. [Parallel.Pool]
    lets it bypass task retries (a crash is not a retryable task
    failure) and propagates it to the caller, which is exactly what a
    [kill -9] at that instant would leave behind — minus the dead
    process. *)
exception Simulated_crash

val site_name : site -> string

(** [configure ?seed spec] parses [spec], resets all hit counters, and
    arms the harness iff [spec] names at least one site. Raises
    [Invalid_argument] on malformed specs. *)
val configure : ?seed:int -> string -> unit

(** Disarm all sites and reset counters; restores the zero-cost state. *)
val disarm : unit -> unit

val enabled : unit -> bool

(** [fire site] — true iff the armed trigger for [site] fires on this
    hit. Increments the site's hit counter whenever the harness is
    armed (even if the trigger does not match). *)
val fire : site -> bool

(** Hits recorded at [site] since the last [configure]/[disarm]. *)
val hits : site -> int
