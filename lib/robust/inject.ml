(* Deterministic fault injection for the robustness test harness.

   Production cost is a single [Atomic.get] per guarded site: every
   [fire] call first reads the global [armed] flag and bails. Sites are
   armed either programmatically ([configure]) or through the
   [PLLSCOPE_INJECT] environment variable at module initialisation, so
   released binaries can be fault-tested without recompilation.

   Spec grammar (comma-separated, e.g. "lu-pivot:2,smat-nan:*"):
     site:N    fire on the N-th hit of that site only (1-based)
     site:N+   fire on the N-th hit and every later one
     site:*    fire on every hit
     site:~P   fire with probability P per hit, from a seeded stream

   The ~P stream is a splitmix64 generator seeded from
   [PLLSCOPE_INJECT_SEED] (or [configure ~seed]) and the site index, so
   a given (seed, hit-ordinal) pair always gives the same verdict. *)

type site =
  | Lu_pivot
  | Smat_nan
  | Power_stall
  | Pool_task
  | Task_hang
  | Journal_torn
  | Crash_at_point
  | Grid_plan_nan
  | Net_torn
  | Net_drop
  | Net_slow
  | Stream_disconnect
  | Chunk_torn
  | Stale_key

(* Raised by crash-simulation sites (journal-torn, crash-at-point) to
   model abrupt process death. Defined here — not in Runner — so that
   Parallel.Pool can recognise it and let it bypass the retry loop
   without depending on the runner library. *)
exception Simulated_crash

let n_sites = 14

let index = function
  | Lu_pivot -> 0
  | Smat_nan -> 1
  | Power_stall -> 2
  | Pool_task -> 3
  | Task_hang -> 4
  | Journal_torn -> 5
  | Crash_at_point -> 6
  | Grid_plan_nan -> 7
  | Net_torn -> 8
  | Net_drop -> 9
  | Net_slow -> 10
  | Stream_disconnect -> 11
  | Chunk_torn -> 12
  | Stale_key -> 13

let site_name = function
  | Lu_pivot -> "lu-pivot"
  | Smat_nan -> "smat-nan"
  | Power_stall -> "power-stall"
  | Pool_task -> "pool-task"
  | Task_hang -> "task-hang"
  | Journal_torn -> "journal-torn"
  | Crash_at_point -> "crash-at-point"
  | Grid_plan_nan -> "grid-plan-nan"
  | Net_torn -> "net-torn"
  | Net_drop -> "net-drop"
  | Net_slow -> "net-slow"
  | Stream_disconnect -> "stream-disconnect"
  | Chunk_torn -> "chunk-torn"
  | Stale_key -> "stale-key"

let site_of_name = function
  | "lu-pivot" -> Lu_pivot
  | "smat-nan" -> Smat_nan
  | "power-stall" -> Power_stall
  | "pool-task" -> Pool_task
  | "task-hang" -> Task_hang
  | "journal-torn" -> Journal_torn
  | "crash-at-point" -> Crash_at_point
  | "grid-plan-nan" -> Grid_plan_nan
  | "net-torn" -> Net_torn
  | "net-drop" -> Net_drop
  | "net-slow" -> Net_slow
  | "stream-disconnect" -> Stream_disconnect
  | "chunk-torn" -> Chunk_torn
  | "stale-key" -> Stale_key
  | s -> invalid_arg (Printf.sprintf "Inject.site_of_name: unknown site %S" s)

type trigger = Never | Always | Nth of int | From of int | Prob of float

let default_seed = 0x1a2b3c4d
let armed = Atomic.make false
let specs = Array.make n_sites Never
let counters = Array.init n_sites (fun _ -> Atomic.make 0)

(* One splitmix64 stream per site; states only advance for ~P specs. *)
let prng_states = Array.init n_sites (fun _ -> Atomic.make 0L)

let splitmix64 state =
  let open Int64 in
  let z = add state 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  (z, logxor z (shift_right_logical z 31))

(* Advance the site's stream and map the draw to [0,1). *)
let next_uniform i =
  let rec loop () =
    let s = Atomic.get prng_states.(i) in
    let state', out = splitmix64 s in
    if Atomic.compare_and_set prng_states.(i) s state' then
      let bits = Int64.shift_right_logical out 11 in
      Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)
    else loop ()
  in
  loop ()

let seed_streams seed =
  Array.iteri
    (fun i st -> Atomic.set st (Int64.of_int ((seed * (i + 1)) lxor 0x5DEECE66D)))
    prng_states

let current_seed = ref default_seed

let reset_counters () =
  Array.iter (fun c -> Atomic.set c 0) counters;
  seed_streams !current_seed

let disarm () =
  Atomic.set armed false;
  Array.fill specs 0 n_sites Never;
  current_seed := default_seed;
  reset_counters ()

let parse_trigger site s =
  let fail () =
    invalid_arg
      (Printf.sprintf "Inject.parse_trigger: bad trigger %S for site %s" s
         (site_name site))
  in
  let len = String.length s in
  if len = 0 then fail ()
  else if s = "*" then Always
  else if s.[0] = '~' then (
    match float_of_string_opt (String.sub s 1 (len - 1)) with
    | Some p when p >= 0.0 && p <= 1.0 -> Prob p
    | _ -> fail ())
  else
    let body, from =
      if s.[len - 1] = '+' then (String.sub s 0 (len - 1), true) else (s, false)
    in
    match int_of_string_opt body with
    | Some n when n >= 1 -> if from then From n else Nth n
    | _ -> fail ()

let parse_spec spec =
  String.split_on_char ',' spec
  |> List.filter_map (fun entry ->
         let entry = String.trim entry in
         if entry = "" then None
         else
           match String.index_opt entry ':' with
           | None ->
               invalid_arg
                 (Printf.sprintf
                    "Inject.parse_spec: bad spec entry %S (want site:trigger)"
                    entry)
           | Some i ->
               let site = site_of_name (String.sub entry 0 i) in
               let trig =
                 parse_trigger site
                   (String.sub entry (i + 1) (String.length entry - i - 1))
               in
               Some (site, trig))

let configure ?(seed = default_seed) spec =
  let entries = parse_spec spec in
  Array.fill specs 0 n_sites Never;
  List.iter (fun (site, trig) -> specs.(index site) <- trig) entries;
  current_seed := (if seed = 0 then default_seed else seed);
  reset_counters ();
  Atomic.set armed
    (Array.exists (fun t -> match t with Never -> false | _ -> true) specs)

let enabled () = Atomic.get armed
let hits site = Atomic.get counters.(index site)

let fire site =
  if not (Atomic.get armed) then false
  else
    let i = index site in
    let hit = 1 + Atomic.fetch_and_add counters.(i) 1 in
    match specs.(i) with
    | Never -> false
    | Always -> true
    | Nth n -> hit = n
    | From n -> hit >= n
    | Prob p -> next_uniform i < p

(* Environment gating: arm from PLLSCOPE_INJECT at startup so release
   binaries can be fault-tested. An empty/unset variable costs nothing. *)
let () =
  match Sys.getenv_opt "PLLSCOPE_INJECT" with
  | None | Some "" -> ()
  | Some spec ->
      let seed =
        match Sys.getenv_opt "PLLSCOPE_INJECT_SEED" with
        | None | Some "" -> default_seed
        | Some s -> (
            match int_of_string_opt s with
            | Some n -> n
            | None ->
                invalid_arg
                  (Printf.sprintf
                     "Inject.configure: PLLSCOPE_INJECT_SEED is not an \
                      integer: %S"
                     s))
      in
      configure ~seed spec
