(** Typed errors for the numerical-robustness layer.

    One constructor per guarded failure mode of the solver stack.
    [_checked] APIs across [Numeric], [Htm_core] and [Parallel] return
    [(_, t) result]; {!Error} wraps the same payload where an exception
    is unavoidable (parsers, strict mode). *)

type t =
  | Singular of { cond_est : float; context : string }
      (** Ill-conditioned or exactly singular linear algebra.
          [cond_est] is a 1-norm condition estimate ([infinity] when a
          pivot was exactly zero); [context] names the operation. *)
  | Non_convergence of { iters : int; residual : float }
      (** An iterative method exhausted its budget without meeting its
          convergence certificate. *)
  | Non_finite of { where : string }
      (** A NaN or infinity escaped the kernel named by [where]. *)
  | Parse of { file : string; line : int; col : int; msg : string }
      (** Netlist syntax error at [file:line:col] (0-based column). *)
  | Worker_failure of { task : int; attempts : int; last : string }
      (** A pool task kept throwing after deterministic retries; [last]
          is the printed final exception. *)
  | Timed_out of { task : int; seconds : float }
      (** A pool task overran the per-task watchdog timeout. [seconds]
          is the configured bound, not a measurement, so the error is
          deterministic for a given configuration. *)
  | Cancelled of { reason : string }
      (** A sweep point was skipped because the run was cancelled
          (deadline, signal, or explicit token) before its chunk was
          claimed. *)
  | Overloaded of { retry_after : float }
      (** The analysis daemon shed this request under load (admission
          queue full or too many clients). [retry_after] is a hint, in
          seconds, for when a retry is likely to be admitted. *)
  | Io_timeout of { seconds : float; what : string }
      (** A framed I/O operation ([what], e.g. ["frame read"]) exceeded
          its deadline — a stalled peer or a half-written frame followed
          by silence. [seconds] is the configured bound. *)
  | Budget_exhausted of { budget_s : float; attempts : int }
      (** A client retry loop hit its total wall-clock budget
          ([budget_s] seconds across all [attempts]) without a
          success — a permanently dead daemon fails in bounded time. *)
  | Circuit_open of { cooldown_s : float }
      (** The client-side circuit breaker is open after too many
          consecutive failures: the call failed fast without touching
          the network. [cooldown_s] is the time until the next probe is
          allowed. *)

exception Error of t

(** [raise_ t] raises {!Error}[ t]. *)
val raise_ : t -> 'a

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [parse_snippet ~src t] — for a {!Parse} error, the offending source
    line of [src] with a caret under the offending column; [None] for
    other constructors or out-of-range lines. *)
val parse_snippet : src:string -> t -> string option
