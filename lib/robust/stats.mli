(** Per-run counters of the robustness machinery.

    Guard sites increment atomics (they fire from pool worker domains);
    {!snapshot} freezes them into a plain record the CLI prints after a
    run. Counter semantics:

    - [dense_fallbacks]: structured-path evaluations that degraded to
      the dense oracle;
    - [singular_guards] / [nonfinite_guards] / [non_convergences]:
      guard firings by error kind (a fallback increments both its kind
      counter and [dense_fallbacks]);
    - [pool_retries]: task re-executions after an exception;
    - [worker_failures]: tasks that still failed after all retries;
    - [task_timeouts]: tasks converted to typed [Timed_out] by the
      pool watchdog;
    - [cancelled_points]: sweep points skipped because the run was
      cancelled (deadline, signal, explicit token);
    - [resumed_points]: points restored from a checkpoint journal
      instead of being recomputed. *)

type t = {
  dense_fallbacks : int;
  singular_guards : int;
  nonfinite_guards : int;
  non_convergences : int;
  pool_retries : int;
  worker_failures : int;
  task_timeouts : int;
  cancelled_points : int;
  resumed_points : int;
}

val snapshot : unit -> t
val reset : unit -> unit

(** Sum of all counters — nonzero iff anything noteworthy happened. *)
val total : t -> int

(** [record_fallback err] — a dense-oracle fallback triggered by [err];
    increments [dense_fallbacks] plus the kind counter of [err]. *)
val record_fallback : Pllscope_error.t -> unit

(** [record_guard err] — a guard fired without a fallback (strict mode,
    checked APIs); increments only the kind counter. *)
val record_guard : Pllscope_error.t -> unit

val record_non_convergence : unit -> unit
val record_retry : unit -> unit
val record_worker_failure : unit -> unit
val record_timeout : unit -> unit
val record_cancelled : unit -> unit

(** [record_resumed n] — [n] points were restored from a checkpoint
    journal (no-op for [n <= 0]). *)
val record_resumed : int -> unit

(** [absorb s] — add every counter of [s] (a snapshot marshalled from
    another process, e.g. a sweep-farm worker's exit frame) into the
    live counters, so a coordinator's end-of-run summary aggregates the
    whole farm. *)
val absorb : t -> unit

val pp : Format.formatter -> t -> unit
