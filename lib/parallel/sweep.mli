(** Deterministic parallel sweeps over frequency grids and parameter
    lists.

    Thin wrappers over {!Pool} that default to the shared {!Pool.default}
    pool. All helpers guarantee that both the {b ordering} and the
    {b values} of the result are independent of the pool size and of the
    scheduling of chunks: every output element is computed by exactly
    one lane from its own input element, and reductions ({!sum}) combine
    the materialized per-index terms sequentially in index order. A
    sweep run on a 1-lane pool and on an N-lane pool is bit-identical. *)

(** [grid ?pool ?chunk f a] — [Array.map f a] on the pool. *)
val grid : ?pool:Pool.t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** [grid_local ?pool ?chunk ~local f a] — like {!grid}, but each task
    runs as [f lane_state a.(i)] with a lane-owned instance of
    [local ()]. Instances are pooled: at most one per concurrently
    running lane is ever created, and an instance is owned by exactly
    one task at a time — this is how mutable per-lane workspaces (e.g.
    an [Htm_core.Plan.t], whose buffers are overwritten at every
    evaluation) ride a sweep without aliasing across lanes.

    Ownership rule: [f] may freely mutate its lane state but must leave
    it reusable, and its {b result must not depend on} which instance it
    received or on the instance's history — fresh instance and reused
    instance must produce bit-identical values, otherwise results would
    depend on the pool size and schedule. (Plans satisfy this by
    construction: every output cell of a plan evaluation is
    overwritten before it is read.) *)
val grid_local :
  ?pool:Pool.t ->
  ?chunk:int ->
  local:(unit -> 'l) ->
  ('l -> 'a -> 'b) ->
  'a array ->
  'b array

(** [map_list ?pool ?chunk f l] — [List.map f l] on the pool, preserving
    order. *)
val map_list : ?pool:Pool.t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list

(** [init ?pool ?chunk n f] — [Array.init n f] on the pool. *)
val init : ?pool:Pool.t -> ?chunk:int -> int -> (int -> 'b) -> 'b array

(** Partial-failure summary of a checked sweep: [values.(i)] is [None]
    exactly when point [i] failed, [failures] lists those points in
    ascending index order with their typed errors, and [total] is the
    grid size. *)
type 'a partial = {
  values : 'a option array;
  failures : (int * Robust.Pllscope_error.t) list;
  total : int;
}

val ok_count : 'a partial -> int

(** [grid_checked ?retries ?cancel ?task_timeout f a] — {!grid} through
    {!Pool.map_checked}: each point is retried in-lane up to [retries]
    times (default 2) and a failure costs only its own slot. Surviving
    values are bit-identical to a clean {!grid} run at any pool size.
    [cancel] and [task_timeout] behave as in {!Pool.map_checked}:
    cancelled points and watchdog timeouts surface as typed failures in
    the partial summary rather than exceptions. *)
val grid_checked :
  ?pool:Pool.t ->
  ?chunk:int ->
  ?retries:int ->
  ?cancel:Cancel.t ->
  ?task_timeout:float ->
  ('a -> 'b) ->
  'a array ->
  'b partial

val pp_partial : Format.formatter -> 'a partial -> unit

(** [sum ?pool ?chunk n term] — [term 0 +. term 1 +. ... +. term (n-1)],
    terms evaluated in parallel, then reduced {b sequentially in index
    order} so the float rounding never depends on the schedule. *)
val sum : ?pool:Pool.t -> ?chunk:int -> int -> (int -> float) -> float
