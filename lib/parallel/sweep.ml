let pool_of = function Some p -> p | None -> Pool.default ()

let grid ?pool ?chunk f a = Pool.map ?chunk (pool_of pool) f a

let map_list ?pool ?chunk f l =
  Array.to_list (Pool.map ?chunk (pool_of pool) f (Array.of_list l))

let init ?pool ?chunk n f = Pool.init ?chunk (pool_of pool) n f

type 'a partial = {
  values : 'a option array;
  failures : (int * Robust.Pllscope_error.t) list;
  total : int;
}

let ok_count p = p.total - List.length p.failures

let grid_checked ?pool ?chunk ?retries ?cancel ?task_timeout f a =
  let results =
    Pool.map_checked ?chunk ?retries ?cancel ?task_timeout (pool_of pool) f a
  in
  let values =
    Array.map (function Ok v -> Some v | Error _ -> None) results
  in
  let failures = ref [] in
  for i = Array.length results - 1 downto 0 do
    match results.(i) with
    | Error e -> failures := (i, e) :: !failures
    | Ok _ -> ()
  done;
  { values; failures = !failures; total = Array.length a }

let pp_partial ppf p =
  match p.failures with
  | [] -> Format.fprintf ppf "sweep: %d/%d points ok" p.total p.total
  | fs ->
      Format.fprintf ppf "sweep: %d/%d points ok; failed:" (ok_count p) p.total;
      List.iter
        (fun (i, e) ->
          Format.fprintf ppf "@\n  point %d: %s" i (Robust.Pllscope_error.to_string e))
        fs

let sum ?pool ?chunk n term =
  if n <= 0 then 0.0
  else begin
    let terms = Pool.init ?chunk (pool_of pool) n term in
    let acc = ref terms.(0) in
    for i = 1 to n - 1 do
      acc := !acc +. terms.(i)
    done;
    !acc
  end
