let pool_of = function Some p -> p | None -> Pool.default ()

let grid ?pool ?chunk f a = Pool.map ?chunk (pool_of pool) f a

(* Lane-local state without Domain.DLS: a mutex-guarded free list of
   [local ()] instances. A task pops an instance (creating one when the
   list is empty), runs, and pushes it back — so at most [lanes]
   instances ever exist, and an instance is owned by exactly one task
   at a time. [Domain.DLS] would also work, but its slots are never
   reclaimed: a fresh key per sweep would grow every domain's local
   table for the life of the process. *)
type 'l lane_cache = { lock : Mutex.t; mutable free : 'l list }

let cache_acquire c local =
  Mutex.lock c.lock;
  let hit = match c.free with [] -> None | x :: rest -> c.free <- rest; Some x in
  Mutex.unlock c.lock;
  match hit with Some x -> x | None -> local ()

let cache_release c l =
  Mutex.lock c.lock;
  c.free <- l :: c.free;
  Mutex.unlock c.lock

let grid_local ?pool ?chunk ~local f a =
  let cache = { lock = Mutex.create (); free = [] } in
  Pool.map ?chunk (pool_of pool) (fun x ->
      let l = cache_acquire cache local in
      Fun.protect ~finally:(fun () -> cache_release cache l) (fun () -> f l x)) a

let map_list ?pool ?chunk f l =
  Array.to_list (Pool.map ?chunk (pool_of pool) f (Array.of_list l))

let init ?pool ?chunk n f = Pool.init ?chunk (pool_of pool) n f

type 'a partial = {
  values : 'a option array;
  failures : (int * Robust.Pllscope_error.t) list;
  total : int;
}

let ok_count p = p.total - List.length p.failures

let grid_checked ?pool ?chunk ?retries ?cancel ?task_timeout f a =
  let results =
    Pool.map_checked ?chunk ?retries ?cancel ?task_timeout (pool_of pool) f a
  in
  let values =
    Array.map (function Ok v -> Some v | Error _ -> None) results
  in
  let failures = ref [] in
  for i = Array.length results - 1 downto 0 do
    match results.(i) with
    | Error e -> failures := (i, e) :: !failures
    | Ok _ -> ()
  done;
  { values; failures = !failures; total = Array.length a }

let pp_partial ppf p =
  match p.failures with
  | [] -> Format.fprintf ppf "sweep: %d/%d points ok" p.total p.total
  | fs ->
      Format.fprintf ppf "sweep: %d/%d points ok; failed:" (ok_count p) p.total;
      List.iter
        (fun (i, e) ->
          Format.fprintf ppf "@\n  point %d: %s" i (Robust.Pllscope_error.to_string e))
        fs

let sum ?pool ?chunk n term =
  if n <= 0 then 0.0
  else begin
    let terms = Pool.init ?chunk (pool_of pool) n term in
    let acc = ref terms.(0) in
    for i = 1 to n - 1 do
      acc := !acc +. terms.(i)
    done;
    !acc
  end
