let pool_of = function Some p -> p | None -> Pool.default ()

let grid ?pool ?chunk f a = Pool.map ?chunk (pool_of pool) f a

let map_list ?pool ?chunk f l =
  Array.to_list (Pool.map ?chunk (pool_of pool) f (Array.of_list l))

let init ?pool ?chunk n f = Pool.init ?chunk (pool_of pool) n f

let sum ?pool ?chunk n term =
  if n <= 0 then 0.0
  else begin
    let terms = Pool.init ?chunk (pool_of pool) n term in
    let acc = ref terms.(0) in
    for i = 1 to n - 1 do
      acc := !acc +. terms.(i)
    done;
    !acc
  end
