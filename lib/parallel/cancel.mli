(** Cooperative cancellation tokens for long-running sweeps.

    A token carries at most one cancellation {!reason} (the first one
    wins). {!Pool} lanes poll the token {b at chunk boundaries}: a
    cancelled run drains cleanly — chunks already claimed finish, no new
    chunks start. Plain maps ({!Pool.map}, {!Sweep.grid}) then raise
    {!Cancelled}; checked maps return the unexecuted points as typed
    [Cancelled] errors in their partial summary, so everything computed
    before the cancellation is preserved (and, with a checkpoint
    journal, already on disk).

    When no explicit token is passed, pool maps watch the process-wide
    {!global} token — the one CLI signal handlers and [--deadline]
    monitors cancel — so cancellation reaches every sweep in the
    process without threading a token through each call site. *)

type reason =
  | Deadline of float  (** run-level deadline of [s] seconds expired *)
  | Signal of int  (** asynchronous signal (e.g. [Sys.sigint]) *)
  | User of string  (** caller-supplied reason *)

exception Cancelled of reason

val reason_to_string : reason -> string

type t

val create : unit -> t

(** [cancel t r] — request cancellation. The first reason is kept;
    subsequent calls are no-ops. Async-signal-safe (a single atomic
    store), so it may be called from a [Sys.Signal_handle]. *)
val cancel : t -> reason -> unit

val get : t -> reason option
val is_cancelled : t -> bool

(** [check t] — raise {!Cancelled} iff [t] is cancelled. Call this from
    long-running task bodies that want to honour cancellation at a finer
    grain than chunk boundaries. *)
val check : t -> unit

(** The ambient token consulted by pool maps when no explicit
    [?cancel] is given. *)
val global : unit -> t

(** Clear the {!global} token for a fresh run (CLI subcommand start,
    test setup). *)
val reset_global : unit -> unit

(** [with_deadline ?token ~seconds f] — run [f ()] with a monitor
    domain that cancels [token] (default {!global}) with
    [Deadline seconds] once [seconds] of wall-clock time have elapsed.
    The monitor is stopped and joined when [f] returns or raises.
    Raises [Invalid_argument] if [seconds <= 0]. *)
val with_deadline : ?token:t -> seconds:float -> (unit -> 'a) -> 'a
