type stats = {
  domains : int;
  maps : int;
  tasks : int;
  items : int;
  wall_seconds : float;
  busy_seconds : float;
}

type t = {
  size : int;
  m : Mutex.t;
  nonempty : Condition.t;  (* a task was queued / shutdown requested *)
  finished : Condition.t;  (* some map call's last helper completed *)
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  maps : int Atomic.t;
  tasks : int Atomic.t;
  items : int Atomic.t;
  wall_us : int Atomic.t;
  busy_us : int Atomic.t;
}

let default_domains () =
  match Sys.getenv_opt "PLLSCOPE_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Stdlib.min d 64
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Queued thunks never raise: chunk loops catch everything into the
   per-map failure slot, so a worker survives any mapped function. *)
let rec worker_loop pool =
  Mutex.lock pool.m;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.nonempty pool.m
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.m
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.m;
    task ();
    worker_loop pool
  end

let create ?domains () =
  let size =
    match domains with
    | Some d -> Stdlib.max 1 d
    | None -> Stdlib.max 1 (default_domains ())
  in
  let pool =
    {
      size;
      m = Mutex.create ();
      nonempty = Condition.create ();
      finished = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      maps = Atomic.make 0;
      tasks = Atomic.make 0;
      items = Atomic.make 0;
      wall_us = Atomic.make 0;
      busy_us = Atomic.make 0;
    }
  in
  pool.workers <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.size

let default_mutex = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_mutex;
  p

let add_us counter dt = ignore (Atomic.fetch_and_add counter (int_of_float (dt *. 1e6)))

(* Wall-clock reads feed only the stats counters (wall_us/busy_us) that
   [pp_stats] reports; they never touch map results, so the pool's
   bit-identical-at-any-size guarantee is unaffected. *)
let now () = (Unix.gettimeofday () [@lint.allow "nondeterminism"])

(* Run [body i] for [i = 0 .. n-1], split into chunks handed out through
   an atomic cursor. The caller is always one of the lanes; worker
   domains pick up at most [chunks - 1] helper thunks from the shared
   queue. Each index is executed exactly once by whichever lane claims
   its chunk, and each lane writes only its own indices, so results
   cannot depend on the schedule. *)
let run_indices ?chunk pool n body =
  if pool.closed then invalid_arg "Pool.run_indices: pool has been shut down";
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Pool.map: chunk must be >= 1"
      | None -> Stdlib.max 1 (Stdlib.min 32 (n / (4 * pool.size)))
    in
    let chunks = (n + chunk - 1) / chunk in
    let cursor = Atomic.make 0 in
    let failure = Atomic.make None in
    let lane () =
      let rec loop () =
        if Atomic.get failure = None then begin
          let c = Atomic.fetch_and_add cursor 1 in
          if c < chunks then begin
            let t0 = now () in
            (try
               let lo = c * chunk in
               let hi = Stdlib.min n (lo + chunk) - 1 in
               for i = lo to hi do
                 body i
               done
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (e, bt))));
            Atomic.incr pool.tasks;
            add_us pool.busy_us (now () -. t0);
            loop ()
          end
        end
      in
      loop ()
    in
    let helpers = Stdlib.min (pool.size - 1) (chunks - 1) in
    let remaining = Atomic.make helpers in
    let t0 = now () in
    if helpers > 0 then begin
      Mutex.lock pool.m;
      for _ = 1 to helpers do
        Queue.push
          (fun () ->
            lane ();
            if Atomic.fetch_and_add remaining (-1) = 1 then begin
              Mutex.lock pool.m;
              Condition.broadcast pool.finished;
              Mutex.unlock pool.m
            end)
          pool.queue
      done;
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.m
    end;
    lane ();
    (* Wait for the helper thunks — but keep draining the shared queue
       while doing so. A lane that maps on its own pool (nested sweep)
       would otherwise park here while the tasks it is waiting for sit
       unclaimed behind it in the queue. *)
    let rec wait () =
      if Atomic.get remaining > 0 then begin
        Mutex.lock pool.m;
        if Queue.is_empty pool.queue then begin
          if Atomic.get remaining > 0 then Condition.wait pool.finished pool.m;
          Mutex.unlock pool.m
        end
        else begin
          let task = Queue.pop pool.queue in
          Mutex.unlock pool.m;
          task ()
        end;
        wait ()
      end
    in
    wait ();
    Atomic.incr pool.maps;
    ignore (Atomic.fetch_and_add pool.items n);
    add_us pool.wall_us (now () -. t0);
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let extract out =
  Array.map (function Some v -> v | None -> assert false) out

let mapi ?chunk pool f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_indices ?chunk pool n (fun i -> out.(i) <- Some (f i a.(i)));
    extract out
  end

let map ?chunk pool f a = mapi ?chunk pool (fun _ x -> f x) a

(* One task under the retry policy. Retries happen in-lane, per index,
   before the lane moves on — the schedule never observes a failure, so
   the bit-identical-at-any-pool-size guarantee of [run_indices] carries
   over to every lane that eventually succeeds. *)
let run_one ~retries ~task f x =
  let rec attempt k =
    match
      if Robust.Inject.fire Robust.Inject.Pool_task then
        failwith "Pool.map_checked: injected pool-task fault"
      else f x
    with
    | v -> Ok v
    | exception e ->
        if k < retries then begin
          Robust.Stats.record_retry ();
          attempt (k + 1)
        end
        else begin
          Robust.Stats.record_worker_failure ();
          Error
            (Robust.Pllscope_error.Worker_failure
               { task; attempts = k + 1; last = Printexc.to_string e })
        end
  in
  attempt 0

let map_checked ?chunk ?(retries = 2) pool f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_indices ?chunk pool n (fun i ->
        out.(i) <- Some (run_one ~retries ~task:i f a.(i)));
    extract out
  end

let init ?chunk pool n f =
  if n < 0 then invalid_arg "Pool.init: negative size";
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_indices ?chunk pool n (fun i -> out.(i) <- Some (f i));
    extract out
  end

let stats pool =
  {
    domains = pool.size;
    maps = Atomic.get pool.maps;
    tasks = Atomic.get pool.tasks;
    items = Atomic.get pool.items;
    wall_seconds = float_of_int (Atomic.get pool.wall_us) *. 1e-6;
    busy_seconds = float_of_int (Atomic.get pool.busy_us) *. 1e-6;
  }

let reset_stats pool =
  Atomic.set pool.maps 0;
  Atomic.set pool.tasks 0;
  Atomic.set pool.items 0;
  Atomic.set pool.wall_us 0;
  Atomic.set pool.busy_us 0

let speedup s = s.busy_seconds /. s.wall_seconds

let pp_stats ppf s =
  Format.fprintf ppf
    "pool: %d domains, %d maps, %d tasks, %d items, wall %.3fs, busy %.3fs, \
     speedup %.2fx"
    s.domains s.maps s.tasks s.items s.wall_seconds s.busy_seconds (speedup s)

let shutdown pool =
  Mutex.lock pool.m;
  if pool.closed then Mutex.unlock pool.m
  else begin
    pool.closed <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.m;
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
