type stats = {
  domains : int;
  maps : int;
  tasks : int;
  items : int;
  wall_seconds : float;
  busy_seconds : float;
}

type t = {
  size : int;
  m : Mutex.t;
  nonempty : Condition.t;  (* a task was queued / shutdown requested *)
  finished : Condition.t;  (* some map call's last helper completed *)
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  maps : int Atomic.t;
  tasks : int Atomic.t;
  items : int Atomic.t;
  wall_us : int Atomic.t;
  busy_us : int Atomic.t;
}

let default_domains () =
  match Sys.getenv_opt "PLLSCOPE_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Stdlib.min d 64
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Queued thunks never raise: chunk loops catch everything into the
   per-map failure slot, so a worker survives any mapped function. *)
let rec worker_loop pool =
  Mutex.lock pool.m;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.nonempty pool.m
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.m
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.m;
    task ();
    worker_loop pool
  end

let create ?domains () =
  let size =
    match domains with
    | Some d -> Stdlib.max 1 d
    | None -> Stdlib.max 1 (default_domains ())
  in
  let pool =
    {
      size;
      m = Mutex.create ();
      nonempty = Condition.create ();
      finished = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      maps = Atomic.make 0;
      tasks = Atomic.make 0;
      items = Atomic.make 0;
      wall_us = Atomic.make 0;
      busy_us = Atomic.make 0;
    }
  in
  pool.workers <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.size

let default_mutex = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_mutex;
  p

let add_us counter dt = ignore (Atomic.fetch_and_add counter (int_of_float (dt *. 1e6)))

(* Wall-clock reads feed only the stats counters (wall_us/busy_us) that
   [pp_stats] reports and the watchdog's overdue decisions; they never
   touch map results, so the pool's bit-identical-at-any-size guarantee
   is unaffected. *)
let now () = (Unix.gettimeofday () [@lint.allow "nondeterminism"])

(* ------------------------------------------------------------------ *)
(* Per-task watchdog                                                   *)

(* One control block per lane. [slot] publishes the attempt the lane is
   currently executing — (attempt ordinal, task index, start time) — to
   the monitor domain; [overdue] carries back the ordinal the monitor
   declared overdue (0 = none). Matching on the ordinal (not a bare
   flag) makes the protocol race-free: a stale verdict about a finished
   attempt can never condemn the next one. *)
type lane_ctl = {
  slot : (int * int * float) option Atomic.t;
  overdue : int Atomic.t;
  mutable seq : int;  (* attempt ordinal counter; owner lane only *)
}

let make_ctl () = { slot = Atomic.make None; overdue = Atomic.make 0; seq = 0 }

type watchdog = { timeout : float; ctls : lane_ctl array }

(* One daemon domain serves every watched map in the process (like the
   default pool's workers, it is never joined): maps register their
   watchdog on start and deregister on finish, so arming a watchdog
   costs two mutexed list operations instead of a domain spawn + join
   per map. The daemon only *marks* overdue attempts; abandoning the
   task is cooperative (the owning lane notices at its next poll
   point). A task that never polls runs to completion regardless — the
   watchdog cannot preempt a domain — but its verdict still converts
   the result to a typed timeout. *)
let wd_mutex = Mutex.create ()
let wd_active : watchdog list ref = ref []
let wd_daemon = ref false

let wd_scan t active =
  List.iter
    (fun wd ->
      Array.iter
        (fun c ->
          match Atomic.get c.slot with
          | Some (seq, _, t0) when t -. t0 > wd.timeout ->
              Atomic.set c.overdue seq
          | _ -> ())
        wd.ctls)
    active

let wd_daemon_loop () =
  let rec loop () =
    Mutex.lock wd_mutex;
    let active = !wd_active in
    Mutex.unlock wd_mutex;
    wd_scan (now ()) active;
    (* scan cadence: a fraction of the tightest active timeout, so a
       timeout is detected within ~9/8 of its bound; idle, the daemon
       naps at 50 ms and costs nothing measurable *)
    let hop =
      List.fold_left
        (fun h wd -> Stdlib.min h (Stdlib.max 0.0005 (wd.timeout /. 8.0)))
        0.05 active
    in
    Unix.sleepf hop;
    loop ()
  in
  loop ()

let watchdog_start ~timeout nlanes =
  let wd = { timeout; ctls = Array.init nlanes (fun _ -> make_ctl ()) } in
  Mutex.lock wd_mutex;
  wd_active := wd :: !wd_active;
  if not !wd_daemon then begin
    wd_daemon := true;
    ignore (Domain.spawn wd_daemon_loop)
  end;
  Mutex.unlock wd_mutex;
  wd

let watchdog_stop wd =
  Mutex.lock wd_mutex;
  wd_active := List.filter (fun w -> w != wd) !wd_active;
  Mutex.unlock wd_mutex

(* Ambient watchdog context of the attempt running on this domain, so
   long task bodies can honour the watchdog via [poll] without
   threading pool internals through their signature. *)
exception Lane_timeout

let dls_ctl : lane_ctl option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let poll () =
  match Domain.DLS.get dls_ctl with
  | None -> ()
  | Some c -> (
      match Atomic.get c.slot with
      | Some (seq, _, _) when Atomic.get c.overdue = seq -> raise Lane_timeout
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Chunked index execution                                             *)

let extract out =
  Array.map (function Some v -> v | None -> assert false) out

(* Run [body ctl i] for [i = 0 .. n-1], split into chunks handed out
   through an atomic cursor. The caller is always one of the lanes;
   worker domains pick up at most [chunks - 1] helper thunks from the
   shared queue. Each index is executed exactly once by whichever lane
   claims its chunk, and each lane writes only its own indices, so
   results cannot depend on the schedule.

   Lanes poll [cancel] before claiming each chunk: once the token is
   cancelled no new chunk starts, in-flight chunks finish, and the
   function returns the cancellation reason iff some chunk was never
   executed. A failure in any chunk still cancels the sweep and
   re-raises in the caller. *)
let run_core ?chunk ?(cancel = Cancel.global ()) ?task_timeout pool n body =
  if pool.closed then invalid_arg "Pool.run_indices: pool has been shut down";
  if n <= 0 then None
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Pool.map: chunk must be >= 1"
      | None -> Stdlib.max 1 (Stdlib.min 32 (n / (4 * pool.size)))
    in
    let chunks = (n + chunk - 1) / chunk in
    let cursor = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let failure = Atomic.make None in
    let helpers = Stdlib.min (pool.size - 1) (chunks - 1) in
    let wd =
      match task_timeout with
      | Some timeout when timeout > 0.0 ->
          Some (watchdog_start ~timeout (helpers + 1))
      | Some _ -> invalid_arg "Pool.map_checked: task_timeout must be > 0"
      | None -> None
    in
    let next_lane = Atomic.make 0 in
    let lane () =
      let ctl =
        match wd with
        | None -> None
        | Some wd ->
            let id = Atomic.fetch_and_add next_lane 1 in
            (* nested maps on the same pool can enlist more lanes than
               helpers + 1 (a parked lane drains foreign chunks); spill
               lanes simply run unwatched *)
            if id < Array.length wd.ctls then Some wd.ctls.(id) else None
      in
      let rec loop () =
        if Atomic.get failure = None && not (Cancel.is_cancelled cancel) then begin
          let c = Atomic.fetch_and_add cursor 1 in
          if c < chunks then begin
            let t0 = now () in
            (try
               let lo = c * chunk in
               let hi = Stdlib.min n (lo + chunk) - 1 in
               for i = lo to hi do
                 body ctl i
               done;
               Atomic.incr completed
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (e, bt))));
            Atomic.incr pool.tasks;
            add_us pool.busy_us (now () -. t0);
            loop ()
          end
        end
      in
      loop ()
    in
    let remaining = Atomic.make helpers in
    let t0 = now () in
    if helpers > 0 then begin
      Mutex.lock pool.m;
      for _ = 1 to helpers do
        Queue.push
          (fun () ->
            lane ();
            if Atomic.fetch_and_add remaining (-1) = 1 then begin
              Mutex.lock pool.m;
              Condition.broadcast pool.finished;
              Mutex.unlock pool.m
            end)
          pool.queue
      done;
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.m
    end;
    lane ();
    (* Wait for the helper thunks — but keep draining the shared queue
       while doing so. A lane that maps on its own pool (nested sweep)
       would otherwise park here while the tasks it is waiting for sit
       unclaimed behind it in the queue. *)
    let rec wait () =
      if Atomic.get remaining > 0 then begin
        Mutex.lock pool.m;
        if Queue.is_empty pool.queue then begin
          if Atomic.get remaining > 0 then Condition.wait pool.finished pool.m;
          Mutex.unlock pool.m
        end
        else begin
          let task = Queue.pop pool.queue in
          Mutex.unlock pool.m;
          task ()
        end;
        wait ()
      end
    in
    wait ();
    Option.iter watchdog_stop wd;
    Atomic.incr pool.maps;
    ignore (Atomic.fetch_and_add pool.items n);
    add_us pool.wall_us (now () -. t0);
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        if Atomic.get completed < chunks then Cancel.get cancel else None
  end

(* Plain variant: cancellation mid-map has no partial result to return,
   so it raises in the caller. *)
let run_indices ?chunk ?cancel pool n body =
  match run_core ?chunk ?cancel pool n (fun _ i -> body i) with
  | None -> ()
  | Some r -> raise (Cancel.Cancelled r)

let mapi ?chunk ?cancel pool f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_indices ?chunk ?cancel pool n (fun i -> out.(i) <- Some (f i a.(i)));
    extract out
  end

let map ?chunk ?cancel pool f a = mapi ?chunk ?cancel pool (fun _ x -> f x) a

(* One task under the retry policy. Retries happen in-lane, per index,
   before the lane moves on — the schedule never observes a failure, so
   the bit-identical-at-any-pool-size guarantee of [run_core] carries
   over to every lane that eventually succeeds.

   Three exceptions bypass the retry loop: [Lane_timeout] (the watchdog
   condemned the attempt — retrying a hang would hang again) becomes a
   typed [Timed_out]; [Cancel.Cancelled] escaping the task body (a
   nested map noticed the run was cancelled) becomes a typed
   [Cancelled]; and [Inject.Simulated_crash] (the harness is modeling
   abrupt process death) propagates so the whole map aborts exactly
   like a killed process would. *)
let run_one ~retries ~task ~ctl ~timeout f x =
  let start_attempt () =
    match ctl with
    | Some c ->
        c.seq <- c.seq + 1;
        Atomic.set c.slot (Some (c.seq, task, now ()))
    | None -> ()
  in
  let clear () =
    match ctl with Some c -> Atomic.set c.slot None | None -> ()
  in
  let overdue () =
    match ctl with
    | Some c -> Atomic.get c.overdue = c.seq
    | None -> false
  in
  (* injected cooperative hang: park until the watchdog condemns this
     attempt, exactly like a stuck solver that polls [Pool.poll] *)
  let hang () =
    match ctl with
    | Some _ ->
        while not (overdue ()) do
          Unix.sleepf 0.001
        done;
        raise Lane_timeout
    | None ->
        failwith
          "Pool.map_checked: injected task-hang with no task_timeout armed"
  in
  let saved_dls = Domain.DLS.get dls_ctl in
  Domain.DLS.set dls_ctl ctl;
  let finish r =
    clear ();
    Domain.DLS.set dls_ctl saved_dls;
    r
  in
  let rec attempt k =
    start_attempt ();
    match
      if Robust.Inject.fire Robust.Inject.Pool_task then
        failwith "Pool.map_checked: injected pool-task fault"
      else if Robust.Inject.fire Robust.Inject.Task_hang then hang ()
      else f x
    with
    | v -> finish (Ok v)
    | exception Lane_timeout ->
        Robust.Stats.record_timeout ();
        finish
          (Error
             (Robust.Pllscope_error.Timed_out
                { task; seconds = Option.value timeout ~default:0.0 }))
    | exception Robust.Inject.Simulated_crash ->
        clear ();
        Domain.DLS.set dls_ctl saved_dls;
        raise Robust.Inject.Simulated_crash
    | exception Cancel.Cancelled r ->
        (* a nested map inside the task body observed the cancellation;
           that's the run being cancelled, not the task failing — no
           retry, typed Cancelled slot *)
        Robust.Stats.record_cancelled ();
        finish
          (Error
             (Robust.Pllscope_error.Cancelled
                { reason = Cancel.reason_to_string r }))
    | exception e ->
        if overdue () then begin
          (* the watchdog condemned this attempt while it was failing;
             report the timeout, not the incidental exception *)
          Robust.Stats.record_timeout ();
          finish
            (Error
               (Robust.Pllscope_error.Timed_out
                  { task; seconds = Option.value timeout ~default:0.0 }))
        end
        else if k < retries then begin
          Robust.Stats.record_retry ();
          attempt (k + 1)
        end
        else begin
          Robust.Stats.record_worker_failure ();
          finish
            (Error
               (Robust.Pllscope_error.Worker_failure
                  { task; attempts = k + 1; last = Printexc.to_string e }))
        end
  in
  attempt 0

let map_checked ?chunk ?(retries = 2) ?cancel ?task_timeout pool f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    let reason =
      run_core ?chunk ?cancel ?task_timeout pool n (fun ctl i ->
          out.(i) <-
            Some (run_one ~retries ~task:i ~ctl ~timeout:task_timeout f a.(i)))
    in
    match reason with
    | None -> extract out
    | Some r ->
        (* cancelled mid-map: points whose chunk never ran become typed
           [Cancelled] slots so everything computed is still returned *)
        let reason = Cancel.reason_to_string r in
        Array.map
          (function
            | Some v -> v
            | None ->
                Robust.Stats.record_cancelled ();
                Error (Robust.Pllscope_error.Cancelled { reason }))
          out
  end

let init ?chunk ?cancel pool n f =
  if n < 0 then invalid_arg "Pool.init: negative size";
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_indices ?chunk ?cancel pool n (fun i -> out.(i) <- Some (f i));
    extract out
  end

let stats pool =
  {
    domains = pool.size;
    maps = Atomic.get pool.maps;
    tasks = Atomic.get pool.tasks;
    items = Atomic.get pool.items;
    wall_seconds = float_of_int (Atomic.get pool.wall_us) *. 1e-6;
    busy_seconds = float_of_int (Atomic.get pool.busy_us) *. 1e-6;
  }

let reset_stats pool =
  Atomic.set pool.maps 0;
  Atomic.set pool.tasks 0;
  Atomic.set pool.items 0;
  Atomic.set pool.wall_us 0;
  Atomic.set pool.busy_us 0

let speedup s = s.busy_seconds /. s.wall_seconds

let pp_stats ppf s =
  Format.fprintf ppf
    "pool: %d domains, %d maps, %d tasks, %d items, wall %.3fs, busy %.3fs, \
     speedup %.2fx"
    s.domains s.maps s.tasks s.items s.wall_seconds s.busy_seconds (speedup s)

let shutdown pool =
  Mutex.lock pool.m;
  if pool.closed then Mutex.unlock pool.m
  else begin
    pool.closed <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.m;
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
