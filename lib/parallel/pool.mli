(** Fixed pool of worker domains for embarrassingly parallel sweeps.

    A pool owns [size - 1] long-lived worker domains plus the calling
    domain, which always participates in the work. Work items are
    dispatched as chunks of a contiguous index range; every output slot
    is written by exactly one chunk at its own index, so the result of
    {!map} is {b independent of scheduling} — bit-identical for any pool
    size, including 1. A size-1 pool spawns no domains and runs the very
    same chunk loop on the caller, so the sequential fallback exercises
    the exact code path of the parallel one.

    Pools are safe for nested use: a worker that calls {!map} on the
    pool it is running on helps drain the shared queue while waiting for
    its own chunks, so nested maps cannot deadlock.

    Exceptions raised by the mapped function are caught in the worker,
    the sweep is cancelled (remaining chunks are skipped), and the first
    exception is re-raised in the caller with its backtrace. The pool
    stays usable afterwards.

    Every map also polls a {!Cancel.t} token (the explicit [?cancel]
    argument, or else {!Cancel.global}) before claiming each chunk, so
    deadlines and signal handlers drain a sweep cleanly: in-flight
    chunks finish, unclaimed ones never start. Plain maps raise
    {!Cancel.Cancelled} when that leaves the result incomplete;
    {!map_checked} instead returns the skipped points as typed
    [Cancelled] errors. *)

type t

(** Cumulative per-pool instrumentation. [busy_seconds] sums the time
    every lane (workers and caller) spent executing chunks;
    [wall_seconds] sums the elapsed time of each {!map} call as seen by
    the caller. Their ratio estimates the achieved speedup over running
    the same chunks on one lane. *)
type stats = {
  domains : int;  (** lanes: worker domains + the calling domain *)
  maps : int;  (** {!map}/{!init} calls serviced *)
  tasks : int;  (** chunks executed *)
  items : int;  (** elements mapped *)
  wall_seconds : float;
  busy_seconds : float;
}

(** [default_domains ()] — pool size used by {!default}: the
    [PLLSCOPE_DOMAINS] environment variable when set to a positive
    integer (clamped to 64), otherwise [Domain.recommended_domain_count
    ()]. *)
val default_domains : unit -> int

(** [create ?domains ()] — spawn a pool of [domains] lanes (default
    {!default_domains}; clamped below by 1). [domains - 1] worker
    domains are spawned immediately and live until {!shutdown}. *)
val create : ?domains:int -> unit -> t

(** The shared lazily-created pool used by sweep helpers when no
    explicit pool is given. Never shut down. *)
val default : unit -> t

(** Number of lanes (worker domains + caller). *)
val size : t -> int

(** [map ?chunk ?cancel pool f a] — [Array.map f a], computed by all
    lanes in chunks of [chunk] indices (default: balanced across lanes,
    at most 32 items). Output ordering and values are independent of
    pool size and scheduling. Raises {!Cancel.Cancelled} if [cancel]
    (default {!Cancel.global}) is cancelled before every chunk ran. *)
val map : ?chunk:int -> ?cancel:Cancel.t -> t -> ('a -> 'b) -> 'a array -> 'b array

(** [mapi ?chunk ?cancel pool f a] — indexed variant of {!map}. *)
val mapi :
  ?chunk:int -> ?cancel:Cancel.t -> t -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [map_checked ?retries ?cancel ?task_timeout pool f a] — like {!map},
    but a task that raises is retried in-lane up to [retries] times
    (default 2) before its slot becomes [Error (Worker_failure _)];
    other tasks are unaffected and the sweep always completes. Retries
    happen inside the owning lane before it advances, so surviving slots
    are bit-identical to a fully clean run at any pool size. Retries and
    exhausted tasks are counted in {!Robust.Stats}.

    [task_timeout] (seconds, > 0) arms a watchdog: a monitor domain
    marks any attempt running longer than the bound as overdue, the task
    is abandoned at its next poll point ({!poll}, or the cooperative
    hang of the [task-hang] injection site), and its slot becomes
    [Error (Timed_out _)] without retrying — the timeout payload carries
    the configured bound, not a wall-clock measurement, so results stay
    deterministic. Cancellation mid-map turns never-claimed points into
    [Error (Cancelled _)] slots instead of raising, so everything
    computed is still returned. *)
val map_checked :
  ?chunk:int ->
  ?retries:int ->
  ?cancel:Cancel.t ->
  ?task_timeout:float ->
  t ->
  ('a -> 'b) ->
  'a array ->
  ('b, Robust.Pllscope_error.t) result array

(** [init ?chunk ?cancel pool n f] — [Array.init n f] with the same
    guarantees as {!map}. *)
val init : ?chunk:int -> ?cancel:Cancel.t -> t -> int -> (int -> 'b) -> 'b array

(** [poll ()] — cooperative watchdog check for long task bodies: raises
    an internal timeout signal iff the calling task runs under
    [map_checked ~task_timeout] and the watchdog has marked the current
    attempt overdue. The raise is caught by the pool and surfaces as
    that task's [Error (Timed_out _)] slot. A no-op (one domain-local
    read) everywhere else. *)
val poll : unit -> unit

(** Snapshot of the cumulative counters. *)
val stats : t -> stats

val reset_stats : t -> unit

(** [speedup s] — [busy_seconds /. wall_seconds], the measured effective
    parallelism (1.0 on a single lane; [nan] before any work). *)
val speedup : stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** [shutdown pool] — join the worker domains. Idempotent. Maps on a
    shut-down pool raise [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ?domains f] — [create], run [f], [shutdown] (also on
    exception). *)
val with_pool : ?domains:int -> (t -> 'a) -> 'a
