(* Cooperative cancellation tokens for long-running sweeps.

   A token is a single atomic cell holding the first cancellation
   reason; lanes poll it at chunk boundaries (Pool.run_indices), so a
   cancelled run drains cleanly: chunks already claimed finish, no new
   chunks start, and the caller gets either a typed partial
   (checked sweeps) or a [Cancelled] exception (plain sweeps).

   The [global] token is the ambient one every pool map checks when no
   explicit token is given. CLI deadline monitors and signal handlers
   cancel it; [reset_global] starts a fresh run. *)

type reason = Deadline of float | Signal of int | User of string

exception Cancelled of reason

let reason_to_string = function
  | Deadline s -> Printf.sprintf "deadline of %g s exceeded" s
  | Signal n ->
      let name =
        if n = Sys.sigint then "SIGINT"
        else if n = Sys.sigterm then "SIGTERM"
        else Printf.sprintf "signal %d" n
      in
      Printf.sprintf "interrupted by %s" name
  | User s -> s

type t = { cell : reason option Atomic.t }

let create () = { cell = Atomic.make None }

(* First cancellation wins; later ones keep the original reason so the
   exit path reports what actually stopped the run. *)
let cancel t r = ignore (Atomic.compare_and_set t.cell None (Some r))
let get t = Atomic.get t.cell
let is_cancelled t = Option.is_some (Atomic.get t.cell)

let check t =
  match Atomic.get t.cell with None -> () | Some r -> raise (Cancelled r)

let global_token = { cell = Atomic.make None }
let global () = global_token
let reset_global () = Atomic.set global_token.cell None

(* Wall-clock reads below only decide *when* to stop issuing new
   chunks; they never feed computed values, so sweep results stay
   bit-identical whether or not a deadline is armed. *)
let now () = (Unix.gettimeofday () [@lint.allow "nondeterminism"])

let with_deadline ?token ~seconds f =
  if not (seconds > 0.0) then
    invalid_arg "Cancel.with_deadline: seconds must be > 0";
  let token = match token with Some t -> t | None -> global_token in
  let stop = Atomic.make false in
  let t_end = now () +. seconds in
  let monitor =
    Domain.spawn (fun () ->
        let rec loop () =
          if (not (Atomic.get stop)) && not (is_cancelled token) then
            if now () >= t_end then cancel token (Deadline seconds)
            else begin
              Unix.sleepf (Stdlib.min 0.02 (Stdlib.max 0.001 (t_end -. now ())));
              loop ()
            end
        in
        loop ())
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join monitor)
    f
