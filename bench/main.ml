(* Benchmark + reproduction harness.

   Running `dune exec bench/main.exe` does two things:

   1. regenerates every evaluation artifact of the paper (Figs. 2, 4, 5,
      6, 7, the runtime claim, and our cross-validation experiment),
      printing the rows each figure plots;
   2. runs a Bechamel micro-benchmark suite with one [Test.make] per
      figure, timing the computational kernel behind it.

   Pass an experiment id (2|4|5|6|7|perf|xchk|ablation|isf|nonideal|pfd|noise|fractional) to print only that
   experiment; pass `bench` to run only the micro-benchmarks. *)

open Bechamel
open Toolkit

let spec = Pll_lib.Design.default_spec
let pll = Pll_lib.Design.synthesize spec
let w0 = Pll_lib.Pll.omega0 pll

(* one Bechamel test per table/figure: the kernel that produces it *)

let bench_fig2 =
  (* FIG2 kernel: realize the closed-loop conversion map *)
  let ctx = Htm_core.Htm.ctx ~n_harm:20 ~omega0:w0 in
  Test.make ~name:"fig2: conversion map (rank-one closed form, N=20)"
    (Staged.stage (fun () ->
         ignore
           (Pll_lib.Pll.closed_loop_rank_one ctx pll
              (Numeric.Cx.jomega (0.2 *. w0)))))

let bench_fig2_generic =
  let ctx = Htm_core.Htm.ctx ~n_harm:20 ~omega0:w0 in
  let cl = Pll_lib.Pll.closed_loop_htm pll in
  Test.make ~name:"fig2: conversion map (generic LU feedback, N=20)"
    (Staged.stage (fun () ->
         ignore (Htm_core.Htm.to_matrix ctx cl (Numeric.Cx.jomega (0.2 *. w0)))))

let bench_fig4 =
  Test.make ~name:"fig4: pulse-vs-impulse sweep (8 widths, expm steps)"
    (Staged.stage (fun () -> ignore (Experiments.Exp_fig4.compute ~spec ())))

let bench_fig5 =
  Test.make ~name:"fig5: open-loop Bode sweep (33 points)"
    (Staged.stage (fun () -> ignore (Experiments.Exp_fig5.compute ~spec ())))

let bench_fig6_closed_form =
  (* FIG6 kernel (solid lines): one closed-form |H00| evaluation *)
  let h00 = Pll_lib.Pll.h00_fn pll Pll_lib.Pll.Exact in
  Test.make ~name:"fig6: closed-form H00 point (exact lambda)"
    (Staged.stage (fun () -> ignore (h00 (Numeric.Cx.jomega (0.13 *. w0)))))

let bench_fig6_truncated =
  let h00 = Pll_lib.Pll.h00_fn pll (Pll_lib.Pll.Truncated 500) in
  Test.make ~name:"fig6: truncated-lambda H00 point (500 terms)"
    (Staged.stage (fun () -> ignore (h00 (Numeric.Cx.jomega (0.13 *. w0)))))

let bench_fig6_simulation =
  (* FIG6 kernel (marks): one time-marching measurement; this is the
     "minutes" side of the paper's runtime comparison *)
  Test.make ~name:"fig6: time-marching H00 point (short window)"
    (Staged.stage (fun () ->
         ignore
           (Sim.Extract.measure_h00 pll ~harmonic:3 ~window_periods:16
              ~warmup_periods:32 ~steps_per_period:48 ())))

let bench_fig7 =
  (* FIG7 kernel: one ratio point = margin analysis of lambda *)
  Test.make ~name:"fig7: effective-loop margin analysis (one ratio)"
    (Staged.stage (fun () -> ignore (Pll_lib.Analysis.effective_report pll)))

let bench_xchk_zmodel =
  Test.make ~name:"xchk: exact discrete model construction (expm)"
    (Staged.stage (fun () -> ignore (Pll_lib.Zmodel.of_pll pll)))

let bench_lambda_exact =
  let lam = Pll_lib.Pll.lambda_fn pll Pll_lib.Pll.Exact in
  Test.make ~name:"kernel: lambda(s) exact (coth lattice sums)"
    (Staged.stage (fun () -> ignore (lam (Numeric.Cx.jomega (0.3 *. w0)))))

(* -- parallel sweep engine: sequential vs Domain pools ------------- *)

(* a denser width grid than Exp_fig4's default, so the sweep has enough
   independent matrix exponentials to distribute *)
let parallel_bench_widths =
  Array.to_list (Numeric.Optimize.logspace 1e-4 3e-1 64)

(* pools are created on first use and reused across benchmark
   iterations — spawning domains is part of pool setup, not of a map *)
let pool_table : (int, Parallel.Pool.t) Hashtbl.t = Hashtbl.create 4

let pool_of_size n =
  match Hashtbl.find_opt pool_table n with
  | Some p -> p
  | None ->
      let p = Parallel.Pool.create ~domains:n () in
      Hashtbl.add pool_table n p;
      p

let parallel_pool_sizes =
  List.sort_uniq compare [ 1; 2; 4; Parallel.Pool.default_domains () ]

let fig4_sweep pool =
  Experiments.Exp_fig4.compute ~spec ~widths:parallel_bench_widths ?pool ()

let bench_parallel_tests =
  Test.make ~name:"parallel: fig4 sweep (sequential, no pool involved)"
    (Staged.stage (fun () ->
         ignore (Parallel.Pool.with_pool ~domains:1 (fun p -> fig4_sweep (Some p)))))
  :: List.map
       (fun n ->
         Test.make
           ~name:(Printf.sprintf "parallel: fig4 sweep (pool, %d domains)" n)
           (Staged.stage (fun () -> ignore (fig4_sweep (Some (pool_of_size n))))))
       parallel_pool_sizes

(* Wall-clock comparison with a bit-identity check, emitted as
   machine-readable JSON (BENCH_parallel.json) for CI tracking. *)
let run_parallel_bench () =
  Format.printf "@.== Parallel sweep engine: sequential vs Domain pool ==@.";
  let time_best f =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (!best, Option.get !result)
  in
  let runs =
    List.map
      (fun n ->
        let pool = pool_of_size n in
        Parallel.Pool.reset_stats pool;
        let seconds, rows = time_best (fun () -> fig4_sweep (Some pool)) in
        (n, seconds, rows, Parallel.Pool.stats pool))
      parallel_pool_sizes
  in
  let _, seq_seconds, seq_rows, _ = List.find (fun (n, _, _, _) -> n = 1) runs in
  let bit_identical =
    List.for_all (fun (_, _, rows, _) -> compare rows seq_rows = 0) runs
  in
  Format.printf "fig4 sweep over %d widths, best of 3 runs:@."
    (List.length parallel_bench_widths);
  List.iter
    (fun (n, seconds, _, st) ->
      Format.printf
        "  %d domain(s): %8.4f s  (%.2fx vs 1 domain; measured lane speedup %.2fx)@."
        n seconds (seq_seconds /. seconds)
        (Parallel.Pool.speedup st))
    runs;
  Format.printf "bit-identical outputs across pool sizes: %b@." bit_identical;
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"benchmark\": \"exp_fig4 pulse-vs-impulse sweep\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"widths\": %d,\n" (List.length parallel_bench_widths));
  Buffer.add_string b
    (Printf.sprintf "  \"recommended_domain_count\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string b
    (Printf.sprintf "  \"pllscope_domains_env\": %s,\n"
       (match Sys.getenv_opt "PLLSCOPE_DOMAINS" with
       | Some v -> Printf.sprintf "\"%s\"" (String.escaped v)
       | None -> "null"));
  Buffer.add_string b "  \"runs\": [\n";
  List.iteri
    (fun i (n, seconds, _, st) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"domains\": %d, \"seconds\": %.6f, \"speedup_vs_sequential\": \
            %.4f, \"lane_speedup\": %.4f}%s\n"
           n seconds (seq_seconds /. seconds)
           (Parallel.Pool.speedup st)
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"bit_identical\": %b\n" bit_identical);
  Buffer.add_string b "}\n";
  Runner.Atomic_file.write_string "BENCH_parallel.json" (Buffer.contents b);
  Format.printf "wrote BENCH_parallel.json@."

(* Structured vs dense HTM kernels: times Htm.to_matrix (Smat shapes,
   Sherman–Morrison feedback) against Htm.to_matrix_dense (boxed Cmat
   products + dense LU) on the closed-loop HTM, and compares per-eval
   allocation. Emitted as BENCH_kernels.json for CI tracking. *)
let run_kernel_bench () =
  Format.printf "@.== HTM kernels: structured (Smat) vs dense evaluation ==@.";
  let s = Numeric.Cx.jomega (0.2 *. w0) in
  let cl = Pll_lib.Pll.closed_loop_htm pll in
  (* ns/op as best-of-3 over a rep count sized to ~>=50 ms per batch *)
  let time_ns f =
    ignore (f ());
    (* warmup *)
    let reps = ref 1 in
    let batch () =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to !reps do
        ignore (f ())
      done;
      Unix.gettimeofday () -. t0
    in
    let dt = ref (batch ()) in
    while !dt < 0.05 && !reps < 1_000_000 do
      reps := !reps * 4;
      dt := batch ()
    done;
    let best = ref !dt in
    for _ = 1 to 2 do
      let d = batch () in
      if d < !best then best := d
    done;
    !best /. float_of_int !reps *. 1e9
  in
  let bytes_per_eval f =
    ignore (f ());
    let reps = 10 in
    let b0 = Gc.allocated_bytes () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Gc.allocated_bytes () -. b0) /. float_of_int reps
  in
  let rows =
    List.map
      (fun n_harm ->
        let ctx = Htm_core.Htm.ctx ~n_harm ~omega0:w0 in
        let dense () = Htm_core.Htm.to_matrix_dense ctx cl s in
        let structured () = Htm_core.Htm.to_matrix ctx cl s in
        let dense_ns = time_ns dense and struct_ns = time_ns structured in
        let dense_b = bytes_per_eval dense
        and struct_b = bytes_per_eval structured in
        Format.printf
          "  n_harm %3d (dim %3d): dense %10.0f ns  structured %9.0f ns  \
           (%.1fx); alloc %9.3e B -> %9.3e B (%.1fx)@."
          n_harm (Htm_core.Htm.dim ctx) dense_ns struct_ns
          (dense_ns /. struct_ns) dense_b struct_b (dense_b /. struct_b);
        (n_harm, Htm_core.Htm.dim ctx, dense_ns, struct_ns, dense_b, struct_b))
      [ 10; 20; 40; 80 ]
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    "  \"benchmark\": \"closed-loop HTM realization: structured Smat vs \
     dense\",\n";
  Buffer.add_string b "  \"s_over_omega0\": 0.2,\n";
  Buffer.add_string b "  \"runs\": [\n";
  List.iteri
    (fun i (n_harm, dim, dense_ns, struct_ns, dense_b, struct_b) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"n_harm\": %d, \"dim\": %d, \"dense_ns\": %.1f, \
            \"structured_ns\": %.1f, \"speedup\": %.2f, \"dense_bytes\": \
            %.1f, \"structured_bytes\": %.1f, \"alloc_ratio\": %.2f}%s\n"
           n_harm dim dense_ns struct_ns (dense_ns /. struct_ns) dense_b
           struct_b (dense_b /. struct_b)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  Runner.Atomic_file.write_string "BENCH_kernels.json" (Buffer.contents b);
  Format.printf "wrote BENCH_kernels.json@."

(* Grid-batched plan/execute vs per-point structured evaluation: one
   compiled Htm_core.Plan streamed over a 1k-point log grid against the
   per-point structured path (Htm.to_matrix), which re-walks the
   composition tree, reallocates every intermediate and densifies at
   the API boundary at each point. Both paths run guarded, as in
   production sweeps. Also reported: the scalar fast paths on each side
   (per-point Htm.element vs planned baseband extraction, neither
   densifies) and the planned full-matrix Bigarray grid output.
   Emitted as BENCH_grid.json for CI tracking. *)
let run_grid_bench () =
  Format.printf
    "@.== HTM grid: planned (plan/execute) vs per-point evaluation ==@.";
  let cl = Pll_lib.Pll.closed_loop_htm pll in
  let points = 1000 in
  let ss =
    Array.map Numeric.Cx.jomega
      (Numeric.Optimize.logspace (w0 *. 1e-4) (w0 *. 0.49) points)
  in
  (* seconds per whole-grid run, best-of-3 over a rep count sized to
     >= 50 ms per batch *)
  let time_grid f =
    ignore (f ());
    let reps = ref 1 in
    let batch () =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to !reps do
        ignore (f ())
      done;
      Unix.gettimeofday () -. t0
    in
    let dt = ref (batch ()) in
    while !dt < 0.05 && !reps < 1_000_000 do
      reps := !reps * 4;
      dt := batch ()
    done;
    let best = ref !dt in
    for _ = 1 to 2 do
      let d = batch () in
      if d < !best then best := d
    done;
    !best /. float_of_int !reps
  in
  let bytes_per_point f =
    ignore (f ());
    let b0 = Gc.allocated_bytes () in
    ignore (f ());
    (Gc.allocated_bytes () -. b0) /. float_of_int points
  in
  let rows =
    List.map
      (fun n_harm ->
        let ctx = Htm_core.Htm.ctx ~n_harm ~omega0:w0 in
        let plan = Htm_core.Plan.make ctx cl in
        let sink = ref Numeric.Cx.zero in
        let i0 = Htm_core.Htm.index_of_harmonic ctx 0 in
        let per_point () =
          Array.iter
            (fun s ->
              sink := Numeric.Cmat.get (Htm_core.Htm.to_matrix ctx cl s) i0 i0)
            ss
        in
        let per_point_elt () =
          Array.iter (fun s -> sink := Htm_core.Htm.element ctx cl ~n:0 ~m:0 s) ss
        in
        let planned () =
          ignore
            (Htm_core.Plan.run_grid_map plan (fun _ m -> Htm_core.Smat.get m i0 i0)
               ss)
        in
        let planned_ba () = ignore (Htm_core.Plan.run_grid_ba plan ss) in
        let pp_t = time_grid per_point
        and pe_t = time_grid per_point_elt
        and pl_t = time_grid planned
        and ba_t = time_grid planned_ba in
        let pp_b = bytes_per_point per_point
        and pe_b = bytes_per_point per_point_elt
        and pl_b = bytes_per_point planned in
        ignore !sink;
        let pps t = float_of_int points /. t in
        Format.printf
          "  n_harm %3d (dim %3d): to_matrix %8.0f pt/s  planned %8.0f pt/s \
           (%.1fx)  element %8.0f pt/s (planned %.1fx)  planned-ba %8.0f \
           pt/s; alloc/pt %9.3e B -> %9.3e B (%.0fx)@."
          n_harm (Htm_core.Htm.dim ctx) (pps pp_t) (pps pl_t) (pp_t /. pl_t)
          (pps pe_t) (pe_t /. pl_t) (pps ba_t) pp_b pl_b
          (pp_b /. Stdlib.max 1.0 pl_b);
        (n_harm, Htm_core.Htm.dim ctx, pp_t, pe_t, pl_t, ba_t, pp_b, pe_b, pl_b))
      [ 8; 20; 80 ]
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    "  \"benchmark\": \"closed-loop HTM grid: planned plan/execute vs \
     per-point structured\",\n";
  Buffer.add_string b (Printf.sprintf "  \"grid_points\": %d,\n" points);
  Buffer.add_string b "  \"runs\": [\n";
  List.iteri
    (fun i (n_harm, dim, pp_t, pe_t, pl_t, ba_t, pp_b, pe_b, pl_b) ->
      let pps t = float_of_int points /. t in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"n_harm\": %d, \"dim\": %d, \"per_point_pts_per_s\": %.1f, \
            \"per_point_element_pts_per_s\": %.1f, \"planned_pts_per_s\": \
            %.1f, \"planned_ba_pts_per_s\": %.1f, \"speedup\": %.2f, \
            \"element_speedup\": %.2f, \"per_point_bytes_per_pt\": %.1f, \
            \"per_point_element_bytes_per_pt\": %.1f, \
            \"planned_bytes_per_pt\": %.1f, \"alloc_ratio\": %.2f}%s\n"
           n_harm dim (pps pp_t) (pps pe_t) (pps pl_t) (pps ba_t)
           (pp_t /. pl_t) (pe_t /. pl_t) pp_b pe_b pl_b
           (pp_b /. Stdlib.max 1.0 pl_b)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  Runner.Atomic_file.write_string "BENCH_grid.json" (Buffer.contents b);
  Format.printf "wrote BENCH_grid.json@."

(* Robustness-guard overhead: times the guarded structured evaluator
   (condition estimates + finiteness scans, the default) against the
   same evaluator with Robust.Config guards disabled, with fault
   injection disarmed — i.e. the price every production run pays for
   the safety net. Emitted as BENCH_robust.json for CI tracking; the
   acceptance bar is < 5% overhead. *)
let run_robust_bench () =
  Format.printf "@.== Robustness guards: guarded vs unguarded evaluation ==@.";
  let s = Numeric.Cx.jomega (0.2 *. w0) in
  let cl = Pll_lib.Pll.closed_loop_htm pll in
  (* longer batches and more trials than the kernel bench: the two
     sides differ by a few percent at most, so the comparison needs
     tighter timing than a raw throughput number does *)
  let time_ns f =
    ignore (f ());
    let reps = ref 1 in
    let batch () =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to !reps do
        ignore (f ())
      done;
      Unix.gettimeofday () -. t0
    in
    let dt = ref (batch ()) in
    while !dt < 0.1 && !reps < 1_000_000 do
      reps := !reps * 4;
      dt := batch ()
    done;
    let best = ref !dt in
    for _ = 1 to 4 do
      let d = batch () in
      if d < !best then best := d
    done;
    !best /. float_of_int !reps *. 1e9
  in
  Robust.Inject.disarm ();
  Robust.Stats.reset ();
  let rows =
    List.map
      (fun n_harm ->
        let ctx = Htm_core.Htm.ctx ~n_harm ~omega0:w0 in
        let eval () = Htm_core.Htm.to_matrix ctx cl s in
        Robust.Config.reset ();
        let guarded_ns = time_ns eval in
        Robust.Config.set_guard_checks false;
        let unguarded_ns = time_ns eval in
        Robust.Config.reset ();
        let overhead_pct = (guarded_ns /. unguarded_ns -. 1.0) *. 100.0 in
        Format.printf
          "  n_harm %3d (dim %3d): unguarded %9.0f ns  guarded %9.0f ns  \
           (overhead %+.2f%%)@."
          n_harm (Htm_core.Htm.dim ctx) unguarded_ns guarded_ns overhead_pct;
        (n_harm, Htm_core.Htm.dim ctx, unguarded_ns, guarded_ns, overhead_pct))
      [ 10; 20; 40; 80 ]
  in
  let fallbacks = (Robust.Stats.snapshot ()).Robust.Stats.dense_fallbacks in
  Format.printf "dense fallbacks during the benchmark: %d@." fallbacks;
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    "  \"benchmark\": \"closed-loop HTM realization: guarded vs unguarded \
     structured path\",\n";
  Buffer.add_string b "  \"s_over_omega0\": 0.2,\n";
  Buffer.add_string b
    (Printf.sprintf "  \"dense_fallbacks\": %d,\n" fallbacks);
  Buffer.add_string b "  \"runs\": [\n";
  List.iteri
    (fun i (n_harm, dim, unguarded_ns, guarded_ns, overhead_pct) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"n_harm\": %d, \"dim\": %d, \"unguarded_ns\": %.1f, \
            \"guarded_ns\": %.1f, \"overhead_pct\": %.2f}%s\n"
           n_harm dim unguarded_ns guarded_ns overhead_pct
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  Runner.Atomic_file.write_string "BENCH_robust.json" (Buffer.contents b);
  Format.printf "wrote BENCH_robust.json@."

(* Crash-safe runner overhead: the same checked ratio sweep run bare
   (Sweep.grid_checked) and through Run.grid with a checkpoint journal
   and an armed watchdog — i.e. the full crash-safety tax. Per-frame
   journaling adds a Marshal encode + one mutexed write(2) per point,
   which must stay < 5% of a realistic per-point analysis. Emitted as
   BENCH_runner.json for CI tracking. *)
let run_runner_bench () =
  Format.printf "@.== Crash-safe runner: journal and watchdog overhead ==@.";
  let n_points = 96 in
  let ratios =
    Array.init n_points (fun i ->
        0.02 +. (0.46 *. float_of_int i /. float_of_int (n_points - 1)))
  in
  let task ratio =
    let sub = Pll_lib.Design.with_ratio spec ratio in
    let p = Pll_lib.Design.synthesize sub in
    Pll_lib.Analysis.effective_report p
  in
  let ckpt = Filename.temp_file "pllscope_bench" ".ckpt" in
  let codec = Runner.Run.marshal_codec () in
  let plain () = ignore (Parallel.Sweep.grid_checked task ratios) in
  (* journal only: the per-point Marshal + mutexed write(2) plus the
     fixed open/fsync/close — the cost every checkpointed sweep pays.
     Fresh run each repetition: Run.grid discards the stale journal
     when resume is off. *)
  let journaled () = ignore (Runner.Run.grid ~checkpoint:ckpt ~codec task ratios) in
  (* journal + armed watchdog: adds the watchdog registration and the
     per-task slot bookkeeping *)
  let watched () =
    ignore (Runner.Run.grid ~task_timeout:60.0 ~checkpoint:ckpt ~codec task ratios)
  in
  (* The three configurations are timed in interleaved rounds and
     compared by median: CPU clocks drift over a run, so timing each
     config in its own block would bill the drift to whichever config
     ran last. *)
  let configs = [| plain; journaled; watched |] in
  let rounds = 7 in
  let samples = Array.make_matrix (Array.length configs) rounds 0.0 in
  Array.iter (fun f -> f ()) configs;
  (* warmup *)
  for r = 0 to rounds - 1 do
    Array.iteri
      (fun i f ->
        let t0 = Unix.gettimeofday () in
        f ();
        samples.(i).(r) <- Unix.gettimeofday () -. t0)
      configs
  done;
  let median xs =
    let s = Array.copy xs in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  let plain_s = median samples.(0) in
  let journaled_s = median samples.(1) in
  let watched_s = median samples.(2) in
  (try Sys.remove ckpt with Sys_error _ -> ());
  let journal_pct = ((journaled_s /. plain_s) -. 1.0) *. 100.0 in
  let watchdog_pct = ((watched_s /. plain_s) -. 1.0) *. 100.0 in
  Format.printf
    "  checked sweep, %d points: plain %8.4f s  +journal %8.4f s \
     (%+.2f%%)  +journal+watchdog %8.4f s (%+.2f%%)@."
    n_points plain_s journaled_s journal_pct watched_s watchdog_pct;
  Format.printf "journal overhead acceptance (< 5%%): %s@."
    (if journal_pct < 5.0 then "pass" else "FAIL");
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    "  \"benchmark\": \"checked ratio sweep: plain vs checkpoint journal vs \
     journal + watchdog\",\n";
  Buffer.add_string b (Printf.sprintf "  \"points\": %d,\n" n_points);
  Buffer.add_string b (Printf.sprintf "  \"plain_seconds\": %.6f,\n" plain_s);
  Buffer.add_string b
    (Printf.sprintf "  \"journaled_seconds\": %.6f,\n" journaled_s);
  Buffer.add_string b
    (Printf.sprintf "  \"journal_watchdog_seconds\": %.6f,\n" watched_s);
  Buffer.add_string b
    (Printf.sprintf "  \"journal_overhead_pct\": %.2f,\n" journal_pct);
  Buffer.add_string b
    (Printf.sprintf "  \"journal_watchdog_overhead_pct\": %.2f,\n" watchdog_pct);
  Buffer.add_string b
    (Printf.sprintf "  \"journal_overhead_pass\": %b\n" (journal_pct < 5.0));
  Buffer.add_string b "}\n";
  Runner.Atomic_file.write_string "BENCH_runner.json" (Buffer.contents b);
  Format.printf "wrote BENCH_runner.json@."

(* Sharded multi-process sweep farm: the million-point Monte Carlo
   tolerance study of Exp_nonideal distributed over worker subprocesses.
   Times the farm at shard counts 1/2/4 against the raw in-process
   kernel (no journal, no protocol), checks that every merged journal is
   byte-identical across shard counts, and measures the cost of a full
   resume (replay + merge, zero compute). Emitted as BENCH_farm.json for
   CI tracking. The point count defaults to the 10^6 showcase; override
   with PLLSCOPE_FARM_POINTS for quick runs. *)

let farm_workload_blob =
  lazy (Marshal.to_string (spec, Experiments.Exp_nonideal.default_mc) [])

(* the bench binary is its own farm worker (argv "farm-worker") *)
let run_farm_worker () =
  Farm.Worker.serve
    ~resolve:(fun _shard blob ->
      let (wspec, cfg) :
          Pll_lib.Design.spec * Experiments.Exp_nonideal.mc_config =
        Marshal.from_string blob 0
      in
      let env = Experiments.Exp_nonideal.mc_env ~spec:wspec cfg in
      fun i -> Marshal.to_string (Experiments.Exp_nonideal.mc_point env i) [])
    ()

let run_farm_bench () =
  Format.printf "@.== Sharded sweep farm: multi-process Monte Carlo ==@.";
  let points =
    match
      Option.bind (Sys.getenv_opt "PLLSCOPE_FARM_POINTS") int_of_string_opt
    with
    | Some n when n > 0 -> n
    | _ -> 1_000_000
  in
  let env = Experiments.Exp_nonideal.mc_env ~spec Experiments.Exp_nonideal.default_mc in
  let dir = Filename.temp_file "pllscope_farm_bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let farm_cfg ~resume base shards =
    {
      Farm.Coordinator.shards;
      steal = true;
      resume;
      checkpoint = base;
      blob = Lazy.force farm_workload_blob;
      worker_argv = (fun _ -> [| Sys.executable_name; "farm-worker" |]);
      slice = None;
      chunk = None;
      retries = None;
      task_timeout = None;
      progress = false;
    }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  (* raw kernel baseline: same task, no journal, no subprocesses *)
  let kernel_s, () =
    time (fun () ->
        for i = 0 to points - 1 do
          ignore (Experiments.Exp_nonideal.mc_point env i)
        done)
  in
  Format.printf
    "  in-process kernel (no journal): %8.3f s  (%9.0f points/s)@." kernel_s
    (float_of_int points /. kernel_s);
  let shard_counts = [ 1; 2; 4 ] in
  let runs =
    List.map
      (fun shards ->
        let base = Filename.concat dir (Printf.sprintf "mc%d.ckpt" shards) in
        let seconds, report =
          time (fun () -> Farm.Coordinator.run (farm_cfg ~resume:false base shards) ~n:points)
        in
        let r = report.Farm.Coordinator.failures in
        if r <> [] then
          Format.printf "  WARNING: %d failed points at %d shards@."
            (List.length r) shards;
        Format.printf
          "  %d shard(s): %8.3f s  (%9.0f points/s; %d steals, %d idle \
           waits totalling %.3f s)@."
          shards seconds
          (float_of_int points /. seconds)
          report.Farm.Coordinator.steals report.Farm.Coordinator.assign_waits
          report.Farm.Coordinator.assign_wait_seconds;
        (shards, base, seconds, report))
      shard_counts
  in
  let read_file path = In_channel.with_open_bin path In_channel.input_all in
  let _, base1, _, _ = List.hd runs in
  let canon = read_file base1 in
  let bit_identical =
    List.for_all (fun (_, base, _, _) -> read_file base = canon) runs
  in
  Format.printf "bit-identical merged journals across shard counts: %b@."
    bit_identical;
  (* resume cost: re-running over a complete journal is pure replay +
     merge — the fixed price of crash recovery at this grid size *)
  let _, base4, _, _ = List.nth runs (List.length runs - 1) in
  let resume_s, resume_report =
    time (fun () -> Farm.Coordinator.run (farm_cfg ~resume:true base4 4) ~n:points)
  in
  Format.printf
    "  full resume (replay + merge, no compute): %8.3f s  (%d points \
     restored)@."
    resume_s resume_report.Farm.Coordinator.resumed;
  (* the tolerance-study showcase itself, from the merged payloads *)
  let rows =
    Array.map
      (Option.map (fun s : Experiments.Exp_nonideal.mc_row ->
           Marshal.from_string s 0))
      resume_report.Farm.Coordinator.payloads
  in
  Experiments.Exp_nonideal.mc_print Format.std_formatter
    (Experiments.Exp_nonideal.mc_summarize env rows);
  let seq_s = match runs with (_, _, s, _) :: _ -> s | [] -> assert false in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    "  \"benchmark\": \"sharded farm: Monte Carlo tolerance sweep across \
     worker subprocesses\",\n";
  Buffer.add_string b (Printf.sprintf "  \"points\": %d,\n" points);
  Buffer.add_string b
    (Printf.sprintf "  \"kernel_seconds\": %.6f,\n" kernel_s);
  Buffer.add_string b
    (Printf.sprintf "  \"kernel_points_per_s\": %.1f,\n"
       (float_of_int points /. kernel_s));
  Buffer.add_string b "  \"runs\": [\n";
  List.iteri
    (fun i (shards, _, seconds, (report : Farm.Coordinator.report)) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"shards\": %d, \"seconds\": %.6f, \"points_per_s\": %.1f, \
            \"speedup_vs_1_shard\": %.4f, \"steals\": %d, \"worker_deaths\": \
            %d, \"assign_waits\": %d, \"assign_wait_seconds\": %.6f, \
            \"merged_frames\": %d}%s\n"
           shards seconds
           (float_of_int points /. seconds)
           (seq_s /. seconds) report.Farm.Coordinator.steals
           report.Farm.Coordinator.worker_deaths
           report.Farm.Coordinator.assign_waits
           report.Farm.Coordinator.assign_wait_seconds
           report.Farm.Coordinator.merged_frames
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"bit_identical\": %b,\n" bit_identical);
  Buffer.add_string b
    (Printf.sprintf
       "  \"resume\": {\"seconds\": %.6f, \"resumed_points\": %d, \
        \"replay_points_per_s\": %.1f}\n"
       resume_s resume_report.Farm.Coordinator.resumed
       (float_of_int points /. resume_s));
  Buffer.add_string b "}\n";
  Runner.Atomic_file.write_string "BENCH_farm.json" (Buffer.contents b);
  Format.printf "wrote BENCH_farm.json@.";
  (* scratch journals can be large at 10^6 points: remove them *)
  List.iter
    (fun (_, base, _, _) -> try Sys.remove base with Sys_error _ -> ())
    runs;
  (try Sys.rmdir dir with Sys_error _ -> ())

(* Analysis daemon under concurrent load: an in-process daemon on a
   scratch Unix socket, hammered by concurrent client threads. A cold
   phase (every request a distinct design, so every request computes)
   and a warm phase (a small cycled design pool, so almost every
   request is a cache replay) report throughput and p50/p99 request
   latency; an overload phase against a one-slot, zero-queue daemon
   reports the shed rate and proves a retried request still lands.
   Emitted as BENCH_serve.json for CI tracking. Override the load with
   PLLSCOPE_SERVE_CLIENTS / PLLSCOPE_SERVE_REQS. *)
let run_serve_bench () =
  Format.printf "@.== Analysis daemon: concurrent serving ==@.";
  Runner.Shutdown.ignore_sigpipe ();
  let env_int name default =
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some n when n > 0 -> n
    | _ -> default
  in
  let clients = env_int "PLLSCOPE_SERVE_CLIENTS" 8 in
  let reqs = env_int "PLLSCOPE_SERVE_REQS" 40 in
  let sock_path suffix =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pllscope_bench_%d_%s.sock" (Unix.getpid ()) suffix)
  in
  let with_daemon cfg suffix f =
    let path = sock_path suffix in
    let cfg = { cfg with Serve.Daemon.socket_path = Some path } in
    let d = Serve.Daemon.create cfg in
    let final = ref None in
    let th =
      Thread.create (fun () -> final := Some (Serve.Daemon.serve d)) ()
    in
    let out =
      Fun.protect
        ~finally:(fun () ->
          Serve.Daemon.stop d;
          Thread.join th;
          if Sys.file_exists path then Sys.remove path)
        (fun () -> f path)
    in
    match !final with
    | Some stats -> (out, stats)
    | None -> failwith "Main.run_serve_bench: daemon returned no stats"
  in
  let request path body =
    let c = Serve.Client.connect (Serve.Client.Unix_path path) in
    Fun.protect
      ~finally:(fun () -> Serve.Client.close c)
      (fun () -> Serve.Client.request c (Serve.Wire.oneshot body))
  in
  let spec_variant i =
    {
      spec with
      Pll_lib.Design.fref =
        spec.Pll_lib.Design.fref *. (1.0 +. (1e-4 *. float_of_int i));
    }
  in
  (* all-threads hammer; per-request wall times merged and sorted after *)
  let hammer path ~distinct =
    let lat = Array.make (clients * reqs) 0.0 in
    let errors = Atomic.make 0 in
    let t0 = Unix.gettimeofday () in
    let threads =
      Array.init clients (fun c ->
          Thread.create
            (fun () ->
              for j = 0 to reqs - 1 do
                let i = (c * reqs) + j in
                let body =
                  Serve.Wire.Analyze
                    (spec_variant (if distinct then i else i mod 8))
                in
                let r0 = Unix.gettimeofday () in
                (match request path body with
                | Ok _ -> ()
                | Error _ -> Atomic.incr errors);
                lat.(i) <- Unix.gettimeofday () -. r0
              done)
            ())
    in
    Array.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    Array.sort Float.compare lat;
    let n = Array.length lat in
    let pct p = lat.(min (n - 1) (int_of_float (p *. float_of_int n))) in
    (wall, pct 0.5, pct 0.99, Atomic.get errors)
  in
  let total = clients * reqs in
  let serving_cfg =
    {
      Serve.Daemon.default_config with
      Serve.Daemon.workers = 4;
      queue_depth = clients * 2;
      max_clients = clients * 4;
    }
  in
  let (cold, warm), stats =
    with_daemon serving_cfg "serving" (fun path ->
        let cold = hammer path ~distinct:true in
        let warm = hammer path ~distinct:false in
        (cold, warm))
  in
  let report label (wall, p50, p99, errors) =
    Format.printf
      "  %-24s %8.3f s  %8.0f req/s   p50 %7.3f ms   p99 %7.3f ms%s@." label
      wall
      (float_of_int total /. wall)
      (p50 *. 1e3) (p99 *. 1e3)
      (if errors = 0 then "" else Printf.sprintf "   (%d errors!)" errors)
  in
  report "cold (every req computes)" cold;
  report "warm (cache replays)" warm;
  Format.printf "  cache: %d hits / %d misses; served %d@."
    stats.Serve.Wire.cache_hits stats.Serve.Wire.cache_misses
    stats.Serve.Wire.served;
  (* streamed sweeps: chunked delivery vs the one-shot reply on the same
     grid (the <10% chunking-overhead budget), plus a resume after an
     injected mid-stream disconnect — the replayed cells are journal
     reads, not recomputes *)
  let sweep_points = env_int "PLLSCOPE_SERVE_SWEEP" 192 in
  let state_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pllscope_bench_state_%d" (Unix.getpid ()))
  in
  let stream_cfg =
    {
      Serve.Daemon.default_config with
      Serve.Daemon.workers = 4;
      max_clients = 8;
      state_dir = Some state_dir;
      chunk_points = 16;
    }
  in
  let ratios =
    Array.init sweep_points (fun i ->
        0.02 +. (0.4 *. float_of_int i /. float_of_int (sweep_points - 1)))
  in
  let (oneshot_s, streamed_s, resume_s, resume_stats), stream_daemon_stats =
    with_daemon stream_cfg "stream" (fun path ->
        let connect () = Serve.Client.connect (Serve.Client.Unix_path path) in
        let time f =
          let t0 = Unix.gettimeofday () in
          let v = f () in
          (Unix.gettimeofday () -. t0, v)
        in
        (* distinct specs per phase so every measurement is a cold compute *)
        let oneshot_s, _ =
          time (fun () ->
              match
                request path
                  (Serve.Wire.Sweep { spec = spec_variant 50_001; ratios })
              with
              | Ok _ -> ()
              | Error err ->
                  failwith (Robust.Pllscope_error.to_string err))
        in
        let streamed spec =
          match
            Serve.Client.sweep_streamed ~timeout:60.0 ~connect ~spec ~ratios ()
          with
          | Ok (_, st) -> st
          | Error err -> failwith (Robust.Pllscope_error.to_string err)
        in
        let streamed_s, _ = time (fun () -> streamed (spec_variant 50_002)) in
        Robust.Inject.configure ~seed:11 "stream-disconnect:1";
        let resume_s, resume_stats =
          time (fun () -> streamed (spec_variant 50_003))
        in
        Robust.Inject.disarm ();
        (oneshot_s, streamed_s, resume_s, resume_stats))
  in
  if Sys.file_exists state_dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat state_dir f))
      (Sys.readdir state_dir);
    Unix.rmdir state_dir
  end;
  let overhead_pct = 100.0 *. ((streamed_s /. oneshot_s) -. 1.0) in
  Format.printf
    "  streamed sweep (%d pts):   one-shot %.3f s, streamed %.3f s  \
     (chunking overhead %+.1f%%, %.0f pts/s)@."
    sweep_points oneshot_s streamed_s overhead_pct
    (float_of_int sweep_points /. streamed_s);
  Format.printf
    "  resume after disconnect:   %.3f s total, %d replayed + %d recomputed \
     (%d resume round-trip(s))@."
    resume_s resume_stats.Serve.Client.replayed
    resume_stats.Serve.Client.computed resume_stats.Serve.Client.resumes;
  (* overload: one slot, no queue, every client fires distinct designs
     with no retries — the shed rate is the admission control working *)
  let overload_cfg =
    {
      Serve.Daemon.default_config with
      Serve.Daemon.workers = 1;
      queue_depth = 0;
      max_clients = clients * 4;
      retry_after = 0.002;
    }
  in
  let (shed_seen, ok_seen, retry_ok), overload_stats =
    with_daemon overload_cfg "overload" (fun path ->
        let shed = Atomic.make 0 and okc = Atomic.make 0 in
        let threads =
          Array.init clients (fun c ->
              Thread.create
                (fun () ->
                  for j = 0 to reqs - 1 do
                    let body =
                      Serve.Wire.Analyze
                        (spec_variant (10_000 + (c * reqs) + j))
                    in
                    match request path body with
                    | Ok _ -> Atomic.incr okc
                    | Error (Robust.Pllscope_error.Overloaded _) ->
                        Atomic.incr shed
                    | Error _ -> ()
                  done)
                ())
        in
        Array.iter Thread.join threads;
        (* a patient client retries through the stampede and lands *)
        let retry_ok =
          match
            Serve.Client.with_retries ~attempts:20 ~base_delay:0.002
              ~max_delay:0.05
              ~connect:(fun () ->
                Serve.Client.connect (Serve.Client.Unix_path path))
              (fun conn ->
                Serve.Client.request conn
                  (Serve.Wire.oneshot (Serve.Wire.Analyze (spec_variant 99_999))))
          with
          | Ok _ -> true
          | Error _ -> false
        in
        (Atomic.get shed, Atomic.get okc, retry_ok))
  in
  let shed_rate = float_of_int shed_seen /. float_of_int total in
  Format.printf
    "  overload (1 slot, queue 0): %d served, %d shed of %d  (shed rate \
     %.2f); retry round-trip %s@."
    ok_seen shed_seen total shed_rate
    (if retry_ok then "ok" else "FAILED");
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    "  \"benchmark\": \"analysis daemon: concurrent clients over a Unix \
     socket\",\n";
  Buffer.add_string b (Printf.sprintf "  \"clients\": %d,\n" clients);
  Buffer.add_string b
    (Printf.sprintf "  \"requests_per_client\": %d,\n" reqs);
  let phase name (wall, p50, p99, errors) =
    Buffer.add_string b
      (Printf.sprintf
         "  \"%s\": {\"seconds\": %.6f, \"req_per_s\": %.1f, \"p50_ms\": \
          %.4f, \"p99_ms\": %.4f, \"errors\": %d},\n"
         name wall
         (float_of_int total /. wall)
         (p50 *. 1e3) (p99 *. 1e3) errors)
  in
  phase "cold" cold;
  phase "warm" warm;
  Buffer.add_string b
    (Printf.sprintf "  \"cache\": {\"hits\": %d, \"misses\": %d},\n"
       stats.Serve.Wire.cache_hits stats.Serve.Wire.cache_misses);
  Buffer.add_string b
    (Printf.sprintf
       "  \"streamed\": {\"sweep_points\": %d, \"oneshot_s\": %.6f, \
        \"streamed_s\": %.6f, \"overhead_pct\": %.2f, \"points_per_s\": \
        %.1f},\n"
       sweep_points oneshot_s streamed_s overhead_pct
       (float_of_int sweep_points /. streamed_s));
  Buffer.add_string b
    (Printf.sprintf
       "  \"resume\": {\"seconds\": %.6f, \"replayed\": %d, \"recomputed\": \
        %d, \"resumes\": %d, \"daemon_points_computed\": %d, \
        \"daemon_points_replayed\": %d},\n"
       resume_s resume_stats.Serve.Client.replayed
       resume_stats.Serve.Client.computed resume_stats.Serve.Client.resumes
       stream_daemon_stats.Serve.Wire.points_computed
       stream_daemon_stats.Serve.Wire.points_replayed);
  Buffer.add_string b
    (Printf.sprintf
       "  \"overload\": {\"served\": %d, \"shed\": %d, \"total\": %d, \
        \"shed_rate\": %.4f, \"daemon_shed_counter\": %d, \
        \"retry_roundtrip_ok\": %b}\n"
       ok_seen shed_seen total shed_rate overload_stats.Serve.Wire.shed
       retry_ok);
  Buffer.add_string b "}\n";
  Runner.Atomic_file.write_string "BENCH_serve.json" (Buffer.contents b);
  Format.printf "wrote BENCH_serve.json@."

let bench_sim_period =
  Test.make ~name:"kernel: behavioral simulation (10 periods)"
    (Staged.stage
       (let config =
          Sim.Behavioral.default_config pll
        in
        fun () ->
          ignore
            (Sim.Behavioral.run config Sim.Behavioral.quiet
               ~t_end:(10.0 *. Pll_lib.Pll.period pll))))

(* Run the grouped suite and report the per-run OLS estimate of each
   kernel. *)
let run_benchmarks () =
  Format.printf "@.== Bechamel micro-benchmarks (one per figure) ==@.";
  let test =
    Test.make_grouped ~name:"pllscope"
      ([
        bench_fig2;
        bench_fig2_generic;
        bench_fig4;
        bench_fig5;
        bench_fig6_closed_form;
        bench_fig6_truncated;
        bench_fig6_simulation;
        bench_fig7;
        bench_xchk_zmodel;
        bench_lambda_exact;
        bench_sim_period;
      ]
      @ bench_parallel_tests)
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw_results = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) i raw_results)
      Instance.[ monotonic_clock ]
  in
  let results2 = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) Instance.[ monotonic_clock ] results in
  Hashtbl.iter
    (fun _instance tbl ->
      let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) tbl [] in
      let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Format.printf "%-60s %12.1f ns/run@." name est
          | _ -> Format.printf "%-60s (no estimate)@." name)
        rows)
    results2

let run_figures which =
  let all = which = "all" in
  if all || which = "5" then Experiments.Exp_fig5.run ();
  if all || which = "2" then Experiments.Exp_fig2.run ();
  if all || which = "4" then Experiments.Exp_fig4.run ();
  if all || which = "7" then Experiments.Exp_fig7.run ();
  if all || which = "6" then Experiments.Exp_fig6.run ();
  if all || which = "xchk" then Experiments.Exp_xchk.run ();
  if all || which = "ablation" then Experiments.Exp_ablation.run ();
  if all || which = "isf" then Experiments.Exp_isf.run ();
  if all || which = "nonideal" then Experiments.Exp_nonideal.run ();
  if all || which = "pfd" then Experiments.Exp_pfd.run ();
  if all || which = "noise" then Experiments.Exp_noise.run ();
  if all || which = "fractional" then Experiments.Exp_fractional.run ();
  if all || which = "grid" then Experiments.Exp_grid.run ();
  if all || which = "perf" then Experiments.Exp_perf.run ()

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "farm-worker" -> run_farm_worker ()
  | "bench" -> run_benchmarks ()
  | "parallel" -> run_parallel_bench ()
  | "farm" -> run_farm_bench ()
  | "kernels" -> run_kernel_bench ()
  | "grid" -> run_grid_bench ()
  | "robust" -> run_robust_bench ()
  | "runner" -> run_runner_bench ()
  | "serve" -> run_serve_bench ()
  | ("2" | "4" | "5" | "6" | "7" | "perf" | "xchk" | "ablation" | "isf" | "nonideal" | "pfd" | "noise" | "fractional") as f ->
      run_figures f
  | "all" ->
      run_figures "all";
      run_benchmarks ();
      run_parallel_bench ();
      run_kernel_bench ();
      run_grid_bench ();
      run_robust_bench ();
      run_runner_bench ();
      run_farm_bench ();
      run_serve_bench ()
  | other ->
      Format.printf
        "unknown argument %s (want 2|4|5|6|7|perf|xchk|ablation|isf|nonideal|pfd|noise|fractional|grid|bench|parallel|kernels|grid|robust|runner|farm|serve|all)@."
        other;
      exit 1
