(* pllscope — command-line front end for the HTM-based PLL analyzer.

   Subcommands:
     analyze      LTI vs time-varying loop reports for one design
     bode         open-loop A(jw) and effective lambda(jw) sweeps
     sweep        Fig. 7 ratio sweep (optionally sharded: --shards N)
     mc           Monte Carlo component-tolerance study (farm showcase)
     fig          regenerate a paper figure or extension experiment
     sim          behavioral time-marching run (lock acquisition)
     measure      simulator measurement of |H00| at one rational frequency
     farm         sweep-farm utilities (status of a sharded checkpoint)
     journal      checkpoint-journal utilities (inspect, compact)
     farm-worker  internal: farm worker protocol on stdin/stdout *)

open Cmdliner

let spec_term =
  let fref =
    let doc = "Reference frequency in Hz." in
    Arg.(value & opt float Pll_lib.Design.default_spec.Pll_lib.Design.fref
         & info [ "fref" ] ~docv:"HZ" ~doc)
  in
  let n_div =
    let doc = "Feedback division ratio." in
    Arg.(value & opt float Pll_lib.Design.default_spec.Pll_lib.Design.n_div
         & info [ "n" ] ~docv:"N" ~doc)
  in
  let icp =
    let doc = "Charge-pump current in A." in
    Arg.(value & opt float Pll_lib.Design.default_spec.Pll_lib.Design.icp
         & info [ "icp" ] ~docv:"A" ~doc)
  in
  let kvco =
    let doc = "VCO gain in Hz/V." in
    Arg.(value & opt float Pll_lib.Design.default_spec.Pll_lib.Design.kvco
         & info [ "kvco" ] ~docv:"HZ_PER_V" ~doc)
  in
  let ratio =
    let doc = "Target unity-gain-to-reference ratio w_UG/w0." in
    Arg.(value & opt float 0.1 & info [ "ratio" ] ~docv:"R" ~doc)
  in
  let pm =
    let doc = "Target LTI phase margin in degrees." in
    Arg.(value & opt float 55.0 & info [ "pm" ] ~docv:"DEG" ~doc)
  in
  let build fref n_div icp kvco ratio pm =
    { Pll_lib.Design.fref; n_div; icp; kvco; ratio; phase_margin_deg = pm }
  in
  Term.(const build $ fref $ n_div $ icp $ kvco $ ratio $ pm)

let pp = Format.std_formatter

(* Robustness plumbing shared by every subcommand: --strict turns
   guarded fallbacks into hard failures, the per-run counters and the
   global cancellation token are reset at subcommand start (back-to-back
   runs in one process must not leak state), and any degradation events
   that did happen are summarized after the run. A run cancelled by a
   signal or a --deadline exits with a distinct code (130 / 124). *)
let strict_term =
  let doc =
    "Fail fast when a numerical guard fires instead of degrading to the \
     dense reference evaluator."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let deadline_term =
  let doc =
    "Cancel the run after $(docv) seconds of wall-clock time. In-flight \
     sweep chunks drain cleanly (checkpoints stay consistent) and the \
     exit code is 124."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)

let shards_term =
  let doc =
    "Run the sweep as a farm of $(docv) worker subprocesses with per-shard \
     checkpoint journals merged deterministically at the end (0 = run in \
     this process). Sharded-and-merged results are bit-identical to an \
     in-process run at any shard count."
  in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)

let no_steal_term =
  let doc =
    "Disable work stealing between farm shards; a shard that finishes \
     early goes idle instead of taking ranges from slower shards."
  in
  Arg.(value & flag & info [ "no-steal" ] ~doc)

(* Execute a workload on the farm. Without --checkpoint the base journal
   lives in a temp path and is removed afterwards (the run is then
   neither resumable nor resumed). *)
let farm_run ~shards ~steal ~resume ~checkpoint ?task_timeout workload =
  let base, temporary =
    match checkpoint with
    | Some p -> (p, false)
    | None -> (Filename.temp_file "pllscope_farm" ".journal", true)
  in
  let cfg =
    {
      Farm.Coordinator.shards;
      steal;
      resume;
      checkpoint = base;
      blob = Workloads.to_blob workload;
      worker_argv = (fun _ -> [| Sys.executable_name; "farm-worker" |]);
      slice = None;
      chunk = None;
      retries = None;
      task_timeout;
      progress = true;
    }
  in
  let report = Farm.Coordinator.run cfg ~n:(Workloads.size workload) in
  if temporary then (try Sys.remove base with Sys_error _ -> ());
  report

let with_robust ?deadline strict f =
  Robust.Config.set_strict strict;
  Robust.Stats.reset ();
  Parallel.Cancel.reset_global ();
  let body () =
    match deadline with
    | Some s -> Parallel.Cancel.with_deadline ~seconds:s f
    | None -> f ()
  in
  (match
     Runner.Shutdown.run_quiet_epipe (fun () ->
         match body () with
         | () -> ()
         | exception Robust.Pllscope_error.Error e ->
             Format.fprintf pp "error: %s@." (Robust.Pllscope_error.to_string e);
             exit 1
         | exception Parallel.Cancel.Cancelled r ->
             Format.fprintf pp "cancelled: %s@."
               (Parallel.Cancel.reason_to_string r);
             exit (Runner.Shutdown.exit_code_of_reason r))
   with
  | Some code -> exit code (* downstream closed the pipe: quiet success *)
  | None -> ());
  let s = Robust.Stats.snapshot () in
  if Robust.Stats.total s > 0 then Format.fprintf pp "%a@." Robust.Stats.pp s;
  (* checked sweeps report cancellation as a typed partial instead of
     raising; the exit code must still be the distinct one *)
  match Parallel.Cancel.get (Parallel.Cancel.global ()) with
  | Some r -> exit (Runner.Shutdown.exit_code_of_reason r)
  | None -> ()

let analyze_cmd =
  let run spec strict =
   with_robust strict @@ fun () ->
    let p = Pll_lib.Design.synthesize spec in
    Experiments.Report.section pp "design";
    Experiments.Report.kv pp "reference" "%g Hz, /%g, Icp=%g A, Kvco=%g Hz/V"
      spec.Pll_lib.Design.fref spec.Pll_lib.Design.n_div
      spec.Pll_lib.Design.icp spec.Pll_lib.Design.kvco;
    Format.fprintf pp "%a@." Pll_lib.Loop_filter.pp p.Pll_lib.Pll.filter;
    let lti = Pll_lib.Analysis.lti_report p in
    let eff = Pll_lib.Analysis.effective_report p in
    let m = Pll_lib.Analysis.closed_loop_metrics p in
    Format.fprintf pp "LTI  open loop A(jw):      %a@."
      Pll_lib.Analysis.pp_loop_report lti;
    Format.fprintf pp "TV   open loop lambda(jw): %a@."
      Pll_lib.Analysis.pp_loop_report eff;
    Experiments.Report.kv pp "closed-loop peaking" "%.2f dB at %g rad/s"
      m.Pll_lib.Analysis.peak_db m.Pll_lib.Analysis.peak_freq;
    (match m.Pll_lib.Analysis.bandwidth_3db with
    | Some bw -> Experiments.Report.kv pp "closed-loop -3dB bandwidth" "%g rad/s" bw
    | None -> ());
    Experiments.Report.kv pp "time-varying stable" "%s"
      (if Pll_lib.Analysis.is_stable_tv p then "yes" else "NO (discrete model has poles outside the unit circle)")
  in
  let doc = "LTI vs time-varying analysis of one loop design" in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ spec_term $ strict_term)

let bode_cmd =
  let points =
    Arg.(value & opt int 25 & info [ "points" ] ~docv:"N" ~doc:"Sweep points.")
  in
  let run spec points strict =
    with_robust strict @@ fun () ->
    let p = Pll_lib.Design.synthesize spec in
    let w0 = Pll_lib.Pll.omega0 p in
    let w_ug = Pll_lib.Design.omega_ug spec in
    let a = Lti.Tf.freq_response (Pll_lib.Pll.open_loop_tf p) in
    let lam_fn = Pll_lib.Pll.lambda_fn p Pll_lib.Pll.Exact in
    let lam w = lam_fn (Numeric.Cx.jomega w) in
    let sweep = Lti.Bode.sweep a ~lo:(w_ug /. 50.0) ~hi:(w0 *. 0.49) ~points in
    let lam_sweep = Lti.Bode.sweep lam ~lo:(w_ug /. 50.0) ~hi:(w0 *. 0.49) ~points in
    Experiments.Report.table pp ~title:"open-loop responses"
      ~header:[ "w/w0"; "|A| dB"; "arg A"; "|lambda| dB"; "arg lambda" ]
      (List.map2
         (fun pa pl ->
           [
             Experiments.Report.g (pa.Lti.Bode.omega /. w0);
             Experiments.Report.f3 pa.Lti.Bode.mag_db;
             Experiments.Report.f3 pa.Lti.Bode.phase_deg;
             Experiments.Report.f3 pl.Lti.Bode.mag_db;
             Experiments.Report.f3 pl.Lti.Bode.phase_deg;
           ])
         (Array.to_list sweep) (Array.to_list lam_sweep))
  in
  let doc = "Bode sweeps of A(jw) and lambda(jw)" in
  Cmd.v (Cmd.info "bode" ~doc) Term.(const run $ spec_term $ points $ strict_term)

let sweep_cmd =
  let points =
    let doc =
      "Number of ratio points, linearly spaced over [0.02, 0.5] (default: \
       the 12 paper ratios)."
    in
    Arg.(value & opt (some int) None & info [ "points" ] ~docv:"N" ~doc)
  in
  let checkpoint =
    let doc =
      "Append each computed point to a crash-safe journal at $(docv); an \
       interrupted run can be completed with --resume."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"PATH" ~doc)
  in
  let resume =
    let doc =
      "Replay the --checkpoint journal and recompute only the missing \
       points. The completed sweep is bit-identical to an uninterrupted one."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let task_timeout =
    let doc =
      "Per-point watchdog timeout in seconds; an overrunning point becomes \
       a typed timed-out failure instead of hanging the sweep."
    in
    Arg.(value & opt (some float) None & info [ "task-timeout" ] ~docv:"SECS" ~doc)
  in
  let run spec points checkpoint resume deadline task_timeout shards no_steal
      strict =
    if resume && checkpoint = None then begin
      Format.fprintf pp "error: --resume requires --checkpoint@.";
      exit 1
    end;
    if shards < 0 then begin
      Format.fprintf pp "error: --shards must be >= 0@.";
      exit 1
    end;
    with_robust ?deadline strict @@ fun () ->
    let ratios =
      match points with
      | None -> Array.of_list Experiments.Exp_fig7.default_ratios
      | Some n when n >= 2 ->
          Array.init n (fun i ->
              0.02 +. ((0.5 -. 0.02) *. float_of_int i /. float_of_int (n - 1)))
      | Some _ ->
          Format.fprintf pp "error: --points must be >= 2@.";
          exit 1
    in
    let partial =
      if shards > 0 then
        let report =
          farm_run ~shards ~steal:(not no_steal) ~resume ~checkpoint
            ?task_timeout
            (Workloads.Ratio { spec; ratios })
        in
        Workloads.partial_of_report report ~decode:(fun s ->
            (Marshal.from_string s 0 : Pll_lib.Analysis.ratio_point))
      else
        Runner.Run.grid ?task_timeout ?checkpoint ~resume
          ~codec:(Runner.Run.marshal_codec ())
          (fun ratio -> Workloads.ratio_point spec ratio)
          ratios
    in
    let rows =
      Array.to_list partial.Parallel.Sweep.values |> List.filter_map Fun.id
    in
    Experiments.Exp_fig7.print pp rows;
    if partial.Parallel.Sweep.failures <> [] then
      Format.fprintf pp "%a@." Parallel.Sweep.pp_partial partial
  in
  let doc =
    "Ratio sweep (Fig. 7 quantities), checkpointable, resumable and \
     shardable across worker processes"
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ spec_term $ points $ checkpoint $ resume $ deadline_term
      $ task_timeout $ shards_term $ no_steal_term $ strict_term)

let mc_cmd =
  let points =
    let doc = "Number of Monte Carlo points." in
    Arg.(value & opt int 10_000 & info [ "points" ] ~docv:"N" ~doc)
  in
  let seed =
    let doc = "Base seed; point $(i)'s draws depend only on (seed, i)." in
    Arg.(value & opt int Experiments.Exp_nonideal.default_mc.mc_seed
         & info [ "seed" ] ~docv:"S" ~doc)
  in
  let checkpoint =
    let doc = "Crash-safe journal base path (shards use $(docv).shardK)." in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"PATH" ~doc)
  in
  let resume =
    let doc = "Resume an interrupted run from the --checkpoint journals." in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let task_timeout =
    let doc = "Per-point watchdog timeout in seconds." in
    Arg.(value & opt (some float) None & info [ "task-timeout" ] ~docv:"SECS" ~doc)
  in
  let run spec points seed checkpoint resume deadline task_timeout shards
      no_steal strict =
    if points < 1 then begin
      Format.fprintf pp "error: --points must be >= 1@.";
      exit 1
    end;
    if resume && checkpoint = None then begin
      Format.fprintf pp "error: --resume requires --checkpoint@.";
      exit 1
    end;
    if shards < 0 then begin
      Format.fprintf pp "error: --shards must be >= 0@.";
      exit 1
    end;
    with_robust ?deadline strict @@ fun () ->
    let cfg = { Experiments.Exp_nonideal.default_mc with mc_seed = seed } in
    let env = Experiments.Exp_nonideal.mc_env ~spec cfg in
    let partial =
      if shards > 0 then
        let report =
          farm_run ~shards ~steal:(not no_steal) ~resume ~checkpoint
            ?task_timeout
            (Workloads.Mc { spec; cfg; points })
        in
        Workloads.partial_of_report report ~decode:(fun s ->
            (Marshal.from_string s 0 : Experiments.Exp_nonideal.mc_row))
      else
        Runner.Run.grid ?task_timeout ?checkpoint ~resume
          ~codec:(Runner.Run.marshal_codec ())
          (fun i -> Experiments.Exp_nonideal.mc_point env i)
          (Array.init points Fun.id)
    in
    let summary =
      Experiments.Exp_nonideal.mc_summarize env partial.Parallel.Sweep.values
    in
    Experiments.Exp_nonideal.mc_print pp summary;
    if partial.Parallel.Sweep.failures <> [] then
      Format.fprintf pp "%a@." Parallel.Sweep.pp_partial partial
  in
  let doc =
    "Monte Carlo component-tolerance study of the charge-pump loop \
     (first-order signatures over process spread); the sweep-farm \
     showcase workload"
  in
  Cmd.v (Cmd.info "mc" ~doc)
    Term.(
      const run $ spec_term $ points $ seed $ checkpoint $ resume
      $ deadline_term $ task_timeout $ shards_term $ no_steal_term
      $ strict_term)

let journal_path_arg =
  let doc = "Checkpoint journal file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc)

let print_journal_info path =
  let i = Runner.Journal.inspect path in
  Experiments.Report.kv pp "journal" "%s" path;
  Experiments.Report.kv pp "frames" "%d (%d distinct, %d duplicate)"
    i.Runner.Journal.frames i.Runner.Journal.distinct
    i.Runner.Journal.duplicates;
  Experiments.Report.kv pp "bytes" "%d (%d valid, %d torn)"
    i.Runner.Journal.bytes i.Runner.Journal.valid_bytes
    i.Runner.Journal.torn_bytes;
  match i.Runner.Journal.max_index with
  | Some m -> Experiments.Report.kv pp "max index" "%d" m
  | None -> ()

let print_journal_json path =
  let i = Runner.Journal.inspect path in
  Format.fprintf pp
    "{\"path\": %S, \"frames\": %d, \"distinct\": %d, \"duplicates\": %d, \
     \"bytes\": %d, \"valid_bytes\": %d, \"torn_bytes\": %d, \"max_index\": %s}@."
    path i.Runner.Journal.frames i.Runner.Journal.distinct
    i.Runner.Journal.duplicates i.Runner.Journal.bytes
    i.Runner.Journal.valid_bytes i.Runner.Journal.torn_bytes
    (match i.Runner.Journal.max_index with
    | Some m -> string_of_int m
    | None -> "null")

let journal_cmd =
  let inspect =
    let json =
      let doc = "Emit the inspection as one JSON object (machine-readable)." in
      Arg.(value & flag & info [ "json" ] ~doc)
    in
    let run path json =
      if not (Sys.file_exists path) then begin
        Format.fprintf pp "error: no journal at %s@." path;
        exit 1
      end;
      with_robust false @@ fun () ->
      if json then print_journal_json path else print_journal_info path
    in
    let doc = "Frame counts, CRC status and torn-tail size of a journal" in
    Cmd.v (Cmd.info "inspect" ~doc) Term.(const run $ journal_path_arg $ json)
  in
  let compact =
    let run path =
      if not (Sys.file_exists path) then begin
        Format.fprintf pp "error: no journal at %s@." path;
        exit 1
      end;
      with_robust false @@ fun () ->
      let kept, dropped = Runner.Journal.compact path in
      Experiments.Report.kv pp "compacted" "%s: kept %d frame(s), dropped %d"
        path kept dropped
    in
    let doc =
      "Atomically rewrite a journal keeping only the first frame per point \
       (drops superseded duplicates and any torn tail); bounds the replay \
       cost of long-lived resumed journals"
    in
    Cmd.v (Cmd.info "compact" ~doc) Term.(const run $ journal_path_arg)
  in
  let doc = "Checkpoint-journal utilities" in
  Cmd.group (Cmd.info "journal" ~doc) [ inspect; compact ]

let farm_cmd =
  let status =
    let checkpoint =
      let doc = "Base journal path of the (running or interrupted) farm." in
      Arg.(required & opt (some string) None
           & info [ "checkpoint" ] ~docv:"PATH" ~doc)
    in
    let run checkpoint =
      with_robust false @@ fun () ->
      let paths =
        (if Sys.file_exists checkpoint then [ checkpoint ] else [])
        @ Farm.Coordinator.existing_shards checkpoint
      in
      if paths = [] then
        Format.fprintf pp "no journals at %s@." checkpoint
      else
        Experiments.Report.table pp ~title:"farm journals"
          ~header:[ "journal"; "frames"; "distinct"; "dup"; "torn B"; "max idx" ]
          (List.map
             (fun path ->
               let i = Runner.Journal.inspect path in
               [
                 Filename.basename path;
                 string_of_int i.Runner.Journal.frames;
                 string_of_int i.Runner.Journal.distinct;
                 string_of_int i.Runner.Journal.duplicates;
                 string_of_int i.Runner.Journal.torn_bytes;
                 (match i.Runner.Journal.max_index with
                 | Some m -> string_of_int m
                 | None -> "-");
               ])
             paths)
    in
    let doc = "Show base and per-shard journal state of a sharded sweep" in
    Cmd.v (Cmd.info "status" ~doc) Term.(const run $ checkpoint)
  in
  let doc = "Sweep-farm utilities" in
  Cmd.group (Cmd.info "farm" ~doc) [ status ]

let farm_worker_cmd =
  let run () =
    Farm.Worker.serve
      ~resolve:(fun _shard blob -> Workloads.task (Workloads.of_blob blob))
      ()
  in
  let doc =
    "Internal: sweep-farm worker; speaks the CRC-framed farm protocol on \
     stdin/stdout. Spawned by --shards runs."
  in
  Cmd.v (Cmd.info "farm-worker" ~doc) Term.(const run $ const ())

(* --------------------------------------------------------------- *)
(* analysis daemon                                                  *)

let socket_term =
  let doc = "Unix-domain socket path to listen/connect on." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_term =
  let doc = "Loopback TCP port to listen/connect on (0 = ephemeral)." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let client_addr socket port =
  match (socket, port) with
  | Some path, _ -> Serve.Client.Unix_path path
  | None, Some p -> Serve.Client.Tcp ("127.0.0.1", p)
  | None, None ->
      Format.fprintf pp "error: need --socket or --port@.";
      exit 1

let print_wire_error err =
  Format.fprintf pp "error: %s@." (Robust.Pllscope_error.to_string err)

let fetch_stats addr =
  Serve.Client.with_retries
    ~connect:(fun () -> Serve.Client.connect addr)
    (fun conn ->
      Serve.Client.request conn
        (Serve.Wire.oneshot Serve.Wire.Stats))

let serve_cmd =
  let workers =
    let doc = "Concurrent compute slots." in
    Arg.(value & opt int Serve.Daemon.default_config.Serve.Daemon.workers
         & info [ "workers" ] ~docv:"N" ~doc)
  in
  let queue =
    let doc =
      "Requests queued past the compute slots before shedding with a typed \
       overloaded frame."
    in
    Arg.(value & opt int Serve.Daemon.default_config.Serve.Daemon.queue_depth
         & info [ "queue" ] ~docv:"N" ~doc)
  in
  let max_clients =
    let doc = "Open connections before accept-time shedding." in
    Arg.(value & opt int Serve.Daemon.default_config.Serve.Daemon.max_clients
         & info [ "max-clients" ] ~docv:"N" ~doc)
  in
  let cache =
    let doc = "Response-cache capacity in entries (0 disables)." in
    Arg.(value & opt int Serve.Daemon.default_config.Serve.Daemon.cache_entries
         & info [ "cache" ] ~docv:"N" ~doc)
  in
  let read_timeout =
    let doc = "Whole-frame read deadline in seconds (idle/slow clients)." in
    Arg.(value & opt float Serve.Daemon.default_config.Serve.Daemon.read_timeout
         & info [ "read-timeout" ] ~docv:"SECS" ~doc)
  in
  let write_timeout =
    let doc = "Whole-frame write deadline in seconds (slow readers)." in
    Arg.(value & opt float Serve.Daemon.default_config.Serve.Daemon.write_timeout
         & info [ "write-timeout" ] ~docv:"SECS" ~doc)
  in
  let default_deadline =
    let doc = "Deadline applied to requests that carry none, in seconds." in
    Arg.(value & opt (some float) None
         & info [ "default-deadline" ] ~docv:"SECS" ~doc)
  in
  let drain_grace =
    let doc = "Seconds in-flight requests get to deliver on shutdown." in
    Arg.(value & opt float Serve.Daemon.default_config.Serve.Daemon.drain_grace
         & info [ "drain-grace" ] ~docv:"SECS" ~doc)
  in
  let retry_after =
    let doc = "Retry hint carried by overloaded frames, in seconds." in
    Arg.(value & opt float Serve.Daemon.default_config.Serve.Daemon.retry_after
         & info [ "retry-after" ] ~docv:"SECS" ~doc)
  in
  let status =
    let doc =
      "Query a running daemon's counters (server and robust-layer) as JSON \
       instead of starting one."
    in
    Arg.(value & flag & info [ "status" ] ~doc)
  in
  let state_dir =
    let doc =
      "Directory for streamed-request journals (created if missing); without \
       it resumes save network replay but recompute cells."
    in
    Arg.(value & opt (some string) None
         & info [ "state-dir" ] ~docv:"DIR" ~doc)
  in
  let chunk_points =
    let doc = "Sweep cells per streamed chunk frame." in
    Arg.(value & opt int Serve.Daemon.default_config.Serve.Daemon.chunk_points
         & info [ "chunk-points" ] ~docv:"N" ~doc)
  in
  let heartbeat =
    let doc =
      "Seconds of stream silence before the ticker writes a progress frame."
    in
    Arg.(value & opt float Serve.Daemon.default_config.Serve.Daemon.heartbeat
         & info [ "heartbeat" ] ~docv:"SECS" ~doc)
  in
  let memo =
    let doc = "Plan/grid memo capacity in entries (0 disables)." in
    Arg.(value & opt int Serve.Daemon.default_config.Serve.Daemon.memo_entries
         & info [ "memo" ] ~docv:"N" ~doc)
  in
  let run socket port workers queue max_clients cache read_timeout
      write_timeout default_deadline drain_grace retry_after status state_dir
      chunk_points heartbeat memo strict =
    if status then begin
      match fetch_stats (client_addr socket port) with
      | Ok (Serve.Wire.R_stats s) ->
          Format.fprintf pp "%s@." (Serve.Metrics.json_of_stats s)
      | Ok (Serve.Wire.R_analyze _ | R_bode _ | R_sweep _ | R_healthy) ->
          Format.fprintf pp "error: unexpected reply to a stats request@.";
          exit 1
      | Error err ->
          print_wire_error err;
          exit 1
    end
    else begin
      if socket = None && port = None then begin
        Format.fprintf pp "error: need --socket and/or --port to listen on@.";
        exit 1
      end;
      Robust.Stats.reset ();
      Parallel.Cancel.reset_global ();
      let cfg =
        {
          Serve.Daemon.socket_path = socket;
          tcp_port = port;
          workers;
          queue_depth = queue;
          max_clients;
          cache_entries = cache;
          read_timeout;
          write_timeout;
          default_deadline;
          drain_grace;
          retry_after;
          strict;
          state_dir;
          chunk_points;
          heartbeat;
          memo_entries = memo;
        }
      in
      let d = Serve.Daemon.create cfg in
      (match socket with
      | Some path -> Experiments.Report.kv pp "listening" "unix:%s" path
      | None -> ());
      (match Serve.Daemon.tcp_port d with
      | Some p -> Experiments.Report.kv pp "listening" "tcp:127.0.0.1:%d" p
      | None -> ());
      let final = Serve.Daemon.serve d in
      (* a drained daemon exits 0: shutdown-by-signal is its success
         path, unlike a cancelled sweep *)
      Experiments.Report.kv pp "drained" "served %d, shed %d, cache %d/%d, \
                                          errors %d, io timeouts %d"
        final.Serve.Wire.served final.Serve.Wire.shed
        final.Serve.Wire.cache_hits
        (final.Serve.Wire.cache_hits + final.Serve.Wire.cache_misses)
        final.Serve.Wire.request_errors final.Serve.Wire.io_timeouts;
      let s = final.Serve.Wire.robust in
      if Robust.Stats.total s > 0 then
        Format.fprintf pp "%a@." Robust.Stats.pp s
    end
  in
  let doc =
    "Analysis daemon: concurrent clients over unix/tcp sockets, CRC-framed \
     protocol, admission control with typed overload shedding, per-request \
     deadlines, response cache, graceful drain on SIGTERM"
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_term $ port_term $ workers $ queue $ max_clients
      $ cache $ read_timeout $ write_timeout $ default_deadline $ drain_grace
      $ retry_after $ status $ state_dir $ chunk_points $ heartbeat $ memo
      $ strict_term)

let client_cmd =
  let what =
    let doc = "Request: analyze, bode, sweep, stats or health." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"REQUEST" ~doc)
  in
  let points =
    let doc = "Grid points (bode) or linearly spaced ratios (sweep)." in
    Arg.(value & opt (some int) None & info [ "points" ] ~docv:"N" ~doc)
  in
  let req_deadline =
    let doc = "Per-request compute budget on the server, in seconds." in
    Arg.(value & opt (some float) None
         & info [ "request-deadline" ] ~docv:"SECS" ~doc)
  in
  let timeout =
    let doc = "Seconds to wait for the complete reply frame." in
    Arg.(value & opt float 60.0 & info [ "timeout" ] ~docv:"SECS" ~doc)
  in
  let attempts =
    let doc = "Retry attempts on overload or connection loss." in
    Arg.(value & opt int 5 & info [ "attempts" ] ~docv:"N" ~doc)
  in
  let seed =
    let doc = "Seed of the deterministic retry-jitter stream." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc)
  in
  let budget =
    let doc =
      "Wall-clock retry budget in seconds: fail with a typed error rather \
       than back off past it."
    in
    Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"SECS" ~doc)
  in
  let stream =
    let doc =
      "Stream a sweep in resumable chunks (reconnects resume by idempotency \
       key instead of restarting)."
    in
    Arg.(value & flag & info [ "stream" ] ~doc)
  in
  let print_loop_reports lti eff =
    Format.fprintf pp "LTI  open loop A(jw):      %a@."
      Pll_lib.Analysis.pp_loop_report lti;
    Format.fprintf pp "TV   open loop lambda(jw): %a@."
      Pll_lib.Analysis.pp_loop_report eff
  in
  let run spec what socket port points req_deadline timeout attempts seed
      budget stream =
    let addr = client_addr socket port in
    let print_sweep (s : Serve.Wire.sweep_result) =
      let rows = Array.to_list s.Serve.Wire.rows |> List.filter_map Fun.id in
      Experiments.Exp_fig7.print pp rows;
      if s.Serve.Wire.failures <> [] then
        Format.fprintf pp "%d of %d point(s) failed:@."
          (List.length s.Serve.Wire.failures)
          s.Serve.Wire.total;
      List.iter
        (fun (i, err) ->
          Format.fprintf pp "  point %d: %s@." i
            (Robust.Pllscope_error.to_string err))
        s.Serve.Wire.failures
    in
    let body =
      match what with
      | "analyze" -> Serve.Wire.Analyze spec
      | "bode" ->
          Serve.Wire.Bode { spec; points = Option.value points ~default:25 }
      | "sweep" ->
          let ratios =
            match points with
            | None -> Array.of_list Experiments.Exp_fig7.default_ratios
            | Some n when n >= 2 ->
                Array.init n (fun i ->
                    0.02
                    +. ((0.5 -. 0.02) *. float_of_int i /. float_of_int (n - 1)))
            | Some _ ->
                Format.fprintf pp "error: --points must be >= 2@.";
                exit 1
          in
          Serve.Wire.Sweep { spec; ratios }
      | "stats" -> Serve.Wire.Stats
      | "health" -> Serve.Wire.Health
      | other ->
          Format.fprintf pp "error: unknown request %s@." other;
          exit 1
    in
    if stream then begin
      match body with
      | Serve.Wire.Sweep { spec; ratios } -> (
          match
            Serve.Client.sweep_streamed ~timeout ?deadline:req_deadline
              ~attempts ~seed ?budget
              ~connect:(fun () -> Serve.Client.connect addr)
              ~spec ~ratios ()
          with
          | Error err ->
              print_wire_error err;
              exit 1
          | Ok (s, st) ->
              print_sweep s;
              Experiments.Report.kv pp "stream"
                "%d chunk(s), %d computed, %d replayed, %d resume(s)"
                st.Serve.Client.chunks st.Serve.Client.computed
                st.Serve.Client.replayed st.Serve.Client.resumes)
      | Serve.Wire.Analyze _ | Bode _ | Stats | Health ->
          Format.fprintf pp "error: --stream applies to sweep requests@.";
          exit 1
    end
    else
    let reply =
      Serve.Client.with_retries ~attempts ~seed ?budget
        ~connect:(fun () -> Serve.Client.connect addr)
        (fun conn ->
          Serve.Client.request ~timeout conn
            (Serve.Wire.oneshot ?deadline:req_deadline body))
    in
    match reply with
    | Error err ->
        print_wire_error err;
        exit 1
    | Ok (Serve.Wire.R_analyze r) ->
        print_loop_reports r.Serve.Wire.lti r.Serve.Wire.eff;
        let m = r.Serve.Wire.metrics in
        Experiments.Report.kv pp "closed-loop peaking" "%.2f dB at %g rad/s"
          m.Pll_lib.Analysis.peak_db m.Pll_lib.Analysis.peak_freq;
        Experiments.Report.kv pp "time-varying stable" "%s"
          (if r.Serve.Wire.stable then "yes" else "NO")
    | Ok (Serve.Wire.R_bode b) ->
        Experiments.Report.table pp ~title:"open-loop responses"
          ~header:[ "w"; "|A| dB"; "arg A"; "|lambda| dB"; "arg lambda" ]
          (List.map2
             (fun (pa : Serve.Wire.bode_point) (pl : Serve.Wire.bode_point) ->
               [
                 Experiments.Report.g pa.Serve.Wire.omega;
                 Experiments.Report.f3 pa.Serve.Wire.mag_db;
                 Experiments.Report.f3 pa.Serve.Wire.phase_deg;
                 Experiments.Report.f3 pl.Serve.Wire.mag_db;
                 Experiments.Report.f3 pl.Serve.Wire.phase_deg;
               ])
             (Array.to_list b.Serve.Wire.a)
             (Array.to_list b.Serve.Wire.lambda))
    | Ok (Serve.Wire.R_sweep s) -> print_sweep s
    | Ok (Serve.Wire.R_stats s) ->
        Format.fprintf pp "%s@." (Serve.Metrics.json_of_stats s)
    | Ok Serve.Wire.R_healthy -> Format.fprintf pp "healthy@."
  in
  let doc =
    "Query a running analysis daemon (retries overload/connection loss with \
     deterministic exponential backoff)"
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ spec_term $ what $ socket_term $ port_term $ points
      $ req_deadline $ timeout $ attempts $ seed $ budget $ stream)

let fig_cmd =
  let which =
    let doc =
      "Figure to regenerate: 2, 4, 5, 6, 7, perf, xchk, ablation, isf, nonideal, pfd, noise, fractional, grid or all."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIG" ~doc)
  in
  let run which deadline strict =
    with_robust ?deadline strict @@ fun () ->
    match which with
    | "2" -> Experiments.Exp_fig2.run ()
    | "4" -> Experiments.Exp_fig4.run ()
    | "5" -> Experiments.Exp_fig5.run ()
    | "6" -> Experiments.Exp_fig6.run ()
    | "7" -> Experiments.Exp_fig7.run ()
    | "perf" -> Experiments.Exp_perf.run ()
    | "xchk" -> Experiments.Exp_xchk.run ()
    | "ablation" -> Experiments.Exp_ablation.run ()
    | "isf" -> Experiments.Exp_isf.run ()
    | "nonideal" -> Experiments.Exp_nonideal.run ()
    | "pfd" -> Experiments.Exp_pfd.run ()
    | "noise" -> Experiments.Exp_noise.run ()
    | "fractional" -> Experiments.Exp_fractional.run ()
    | "grid" -> Experiments.Exp_grid.run ()
    | "all" ->
        Experiments.Exp_fig2.run ();
        Experiments.Exp_fig4.run ();
        Experiments.Exp_fig5.run ();
        Experiments.Exp_fig6.run ();
        Experiments.Exp_fig7.run ();
        Experiments.Exp_xchk.run ();
        Experiments.Exp_ablation.run ();
        Experiments.Exp_isf.run ();
        Experiments.Exp_nonideal.run ();
        Experiments.Exp_pfd.run ();
        Experiments.Exp_noise.run ();
        Experiments.Exp_fractional.run ();
        Experiments.Exp_grid.run ();
        Experiments.Exp_perf.run ()
    | other -> Format.fprintf pp "unknown figure %s@." other
  in
  let doc = "Regenerate a paper figure" in
  Cmd.v (Cmd.info "fig" ~doc)
    Term.(const run $ which $ deadline_term $ strict_term)

let sim_cmd =
  let offset =
    Arg.(value & opt float 50e3
         & info [ "offset" ] ~docv:"HZ" ~doc:"Initial VCO frequency error in Hz.")
  in
  let periods =
    Arg.(value & opt int 400 & info [ "periods" ] ~docv:"N" ~doc:"Reference periods to simulate.")
  in
  let run spec offset periods =
    with_robust false @@ fun () ->
    let p = Pll_lib.Design.synthesize spec in
    let record = Sim.Transient.acquisition p ~freq_offset:offset ~periods () in
    let period = Pll_lib.Pll.period p in
    Experiments.Report.kv pp "simulated" "%d reference periods" periods;
    Experiments.Report.kv pp "final |theta|" "%.3e s"
      (Float.abs
         (Sim.Waveform.value record.Sim.Behavioral.theta
            (Sim.Waveform.length record.Sim.Behavioral.theta - 1)));
    (match Sim.Transient.lock_time record ~tol:(period /. 1000.0) with
    | Some t -> Experiments.Report.kv pp "lock time (|theta| < T/1000)" "%.4g s (%.1f periods)" t (t /. period)
    | None -> Experiments.Report.kv pp "lock" "not acquired within the run")
  in
  let doc = "Behavioral lock-acquisition run" in
  Cmd.v (Cmd.info "sim" ~doc) Term.(const run $ spec_term $ offset $ periods)

let measure_cmd =
  let harmonic =
    Arg.(value & opt int 3 & info [ "harmonic" ] ~docv:"J" ~doc:"Modulation cycles per window.")
  in
  let window =
    Arg.(value & opt int 32 & info [ "window" ] ~docv:"P" ~doc:"Window length in reference periods.")
  in
  let run spec harmonic window strict =
    with_robust strict @@ fun () ->
    let p = Pll_lib.Design.synthesize spec in
    let m = Sim.Extract.measure_h00 p ~harmonic ~window_periods:window () in
    let open Numeric in
    Experiments.Report.kv pp "modulation frequency" "%g rad/s (w/w0 = %g)"
      m.Sim.Extract.omega (m.Sim.Extract.omega /. Pll_lib.Pll.omega0 p);
    Experiments.Report.kv pp "measured H00" "%s" (Cx.to_string m.Sim.Extract.measured);
    Experiments.Report.kv pp "HTM closed form" "%s" (Cx.to_string m.Sim.Extract.predicted);
    Experiments.Report.kv pp "LTI approximation" "%s" (Cx.to_string m.Sim.Extract.predicted_lti);
    Experiments.Report.kv pp "relative error vs HTM" "%.5f" m.Sim.Extract.rel_err
  in
  let doc = "Measure H00 from time-marching simulation" in
  Cmd.v (Cmd.info "measure" ~doc)
    Term.(const run $ spec_term $ harmonic $ window $ strict_term)

let netlist_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"SPICE-style netlist of the loop filter (charge pump at node 1).")
  in
  let sense =
    Arg.(value & opt int 1
         & info [ "sense" ] ~docv:"NODE" ~doc:"Control-voltage node (default 1).")
  in
  let run spec file sense strict =
    with_robust strict @@ fun () ->
    let src = In_channel.with_open_text file In_channel.input_all in
    let netlist =
      match Circuit.Parse.netlist ~file src with
      | n -> n
      | exception
          Robust.Pllscope_error.Error (Robust.Pllscope_error.Parse _ as e) ->
          Format.fprintf pp "%s@." (Robust.Pllscope_error.to_string e);
          (match Robust.Pllscope_error.parse_snippet ~src e with
          | Some snippet -> Format.fprintf pp "%s@." snippet
          | None -> ());
          exit 1
    in
    Format.fprintf pp "netlist:@.%a@." Circuit.Netlist.pp netlist;
    let z = Circuit.Mna.transimpedance netlist ~inject:1 ~sense in
    Experiments.Report.kv pp "transimpedance" "%s"
      (Format.asprintf "%a" Lti.Tf.pp z);
    Experiments.Report.kv pp "poles" "%s"
      (String.concat ", "
         (List.map Numeric.Cx.to_string (Lti.Tf.poles z)));
    Experiments.Report.kv pp "zeros" "%s"
      (String.concat ", "
         (List.map Numeric.Cx.to_string (Lti.Tf.zeros z)));
    let filter =
      Pll_lib.Loop_filter.of_netlist netlist ~icp:spec.Pll_lib.Design.icp ~sense ()
    in
    let vco =
      Pll_lib.Vco.time_invariant ~kvco:spec.Pll_lib.Design.kvco
        ~n_div:spec.Pll_lib.Design.n_div ~fref:spec.Pll_lib.Design.fref
    in
    let p =
      Pll_lib.Pll.make ~fref:spec.Pll_lib.Design.fref
        ~n_div:spec.Pll_lib.Design.n_div ~filter ~vco ()
    in
    Format.fprintf pp "LTI  open loop A(jw):      %a@."
      Pll_lib.Analysis.pp_loop_report (Pll_lib.Analysis.lti_report p);
    Format.fprintf pp "TV   open loop lambda(jw): %a@."
      Pll_lib.Analysis.pp_loop_report (Pll_lib.Analysis.effective_report p);
    Experiments.Report.kv pp "time-varying stable" "%s"
      (if Pll_lib.Analysis.is_stable_tv p then "yes" else "NO")
  in
  let doc = "Analyze a PLL whose loop filter is given as a netlist file" in
  Cmd.v (Cmd.info "netlist" ~doc)
    Term.(const run $ spec_term $ file $ sense $ strict_term)

let () =
  Runner.Shutdown.ignore_sigpipe ();
  Runner.Shutdown.install_handlers ();
  let doc = "time-varying frequency-domain PLL analysis (HTM formalism)" in
  let info = Cmd.info "pllscope" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
    [ analyze_cmd; bode_cmd; sweep_cmd; mc_cmd; fig_cmd; sim_cmd; measure_cmd;
      netlist_cmd; farm_cmd; journal_cmd; farm_worker_cmd; serve_cmd;
      client_cmd ]))
