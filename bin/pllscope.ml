(* pllscope — command-line front end for the HTM-based PLL analyzer.

   Subcommands:
     analyze   LTI vs time-varying loop reports for one design
     bode      open-loop A(jw) and effective lambda(jw) sweeps
     sweep     Fig. 7 ratio sweep
     fig       regenerate a paper figure or extension experiment
     sim       behavioral time-marching run (lock acquisition)
     measure   simulator measurement of |H00| at one rational frequency *)

open Cmdliner

let spec_term =
  let fref =
    let doc = "Reference frequency in Hz." in
    Arg.(value & opt float Pll_lib.Design.default_spec.Pll_lib.Design.fref
         & info [ "fref" ] ~docv:"HZ" ~doc)
  in
  let n_div =
    let doc = "Feedback division ratio." in
    Arg.(value & opt float Pll_lib.Design.default_spec.Pll_lib.Design.n_div
         & info [ "n" ] ~docv:"N" ~doc)
  in
  let icp =
    let doc = "Charge-pump current in A." in
    Arg.(value & opt float Pll_lib.Design.default_spec.Pll_lib.Design.icp
         & info [ "icp" ] ~docv:"A" ~doc)
  in
  let kvco =
    let doc = "VCO gain in Hz/V." in
    Arg.(value & opt float Pll_lib.Design.default_spec.Pll_lib.Design.kvco
         & info [ "kvco" ] ~docv:"HZ_PER_V" ~doc)
  in
  let ratio =
    let doc = "Target unity-gain-to-reference ratio w_UG/w0." in
    Arg.(value & opt float 0.1 & info [ "ratio" ] ~docv:"R" ~doc)
  in
  let pm =
    let doc = "Target LTI phase margin in degrees." in
    Arg.(value & opt float 55.0 & info [ "pm" ] ~docv:"DEG" ~doc)
  in
  let build fref n_div icp kvco ratio pm =
    { Pll_lib.Design.fref; n_div; icp; kvco; ratio; phase_margin_deg = pm }
  in
  Term.(const build $ fref $ n_div $ icp $ kvco $ ratio $ pm)

let pp = Format.std_formatter

(* Robustness plumbing shared by every subcommand: --strict turns
   guarded fallbacks into hard failures, the per-run counters and the
   global cancellation token are reset at subcommand start (back-to-back
   runs in one process must not leak state), and any degradation events
   that did happen are summarized after the run. A run cancelled by a
   signal or a --deadline exits with a distinct code (130 / 124). *)
let strict_term =
  let doc =
    "Fail fast when a numerical guard fires instead of degrading to the \
     dense reference evaluator."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let deadline_term =
  let doc =
    "Cancel the run after $(docv) seconds of wall-clock time. In-flight \
     sweep chunks drain cleanly (checkpoints stay consistent) and the \
     exit code is 124."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)

let with_robust ?deadline strict f =
  Robust.Config.set_strict strict;
  Robust.Stats.reset ();
  Parallel.Cancel.reset_global ();
  let body () =
    match deadline with
    | Some s -> Parallel.Cancel.with_deadline ~seconds:s f
    | None -> f ()
  in
  (match
     Runner.Shutdown.run_quiet_epipe (fun () ->
         match body () with
         | () -> ()
         | exception Robust.Pllscope_error.Error e ->
             Format.fprintf pp "error: %s@." (Robust.Pllscope_error.to_string e);
             exit 1
         | exception Parallel.Cancel.Cancelled r ->
             Format.fprintf pp "cancelled: %s@."
               (Parallel.Cancel.reason_to_string r);
             exit (Runner.Shutdown.exit_code_of_reason r))
   with
  | Some code -> exit code (* downstream closed the pipe: quiet success *)
  | None -> ());
  let s = Robust.Stats.snapshot () in
  if Robust.Stats.total s > 0 then Format.fprintf pp "%a@." Robust.Stats.pp s;
  (* checked sweeps report cancellation as a typed partial instead of
     raising; the exit code must still be the distinct one *)
  match Parallel.Cancel.get (Parallel.Cancel.global ()) with
  | Some r -> exit (Runner.Shutdown.exit_code_of_reason r)
  | None -> ()

let analyze_cmd =
  let run spec strict =
   with_robust strict @@ fun () ->
    let p = Pll_lib.Design.synthesize spec in
    Experiments.Report.section pp "design";
    Experiments.Report.kv pp "reference" "%g Hz, /%g, Icp=%g A, Kvco=%g Hz/V"
      spec.Pll_lib.Design.fref spec.Pll_lib.Design.n_div
      spec.Pll_lib.Design.icp spec.Pll_lib.Design.kvco;
    Format.fprintf pp "%a@." Pll_lib.Loop_filter.pp p.Pll_lib.Pll.filter;
    let lti = Pll_lib.Analysis.lti_report p in
    let eff = Pll_lib.Analysis.effective_report p in
    let m = Pll_lib.Analysis.closed_loop_metrics p in
    Format.fprintf pp "LTI  open loop A(jw):      %a@."
      Pll_lib.Analysis.pp_loop_report lti;
    Format.fprintf pp "TV   open loop lambda(jw): %a@."
      Pll_lib.Analysis.pp_loop_report eff;
    Experiments.Report.kv pp "closed-loop peaking" "%.2f dB at %g rad/s"
      m.Pll_lib.Analysis.peak_db m.Pll_lib.Analysis.peak_freq;
    (match m.Pll_lib.Analysis.bandwidth_3db with
    | Some bw -> Experiments.Report.kv pp "closed-loop -3dB bandwidth" "%g rad/s" bw
    | None -> ());
    Experiments.Report.kv pp "time-varying stable" "%s"
      (if Pll_lib.Analysis.is_stable_tv p then "yes" else "NO (discrete model has poles outside the unit circle)")
  in
  let doc = "LTI vs time-varying analysis of one loop design" in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ spec_term $ strict_term)

let bode_cmd =
  let points =
    Arg.(value & opt int 25 & info [ "points" ] ~docv:"N" ~doc:"Sweep points.")
  in
  let run spec points strict =
    with_robust strict @@ fun () ->
    let p = Pll_lib.Design.synthesize spec in
    let w0 = Pll_lib.Pll.omega0 p in
    let w_ug = Pll_lib.Design.omega_ug spec in
    let a = Lti.Tf.freq_response (Pll_lib.Pll.open_loop_tf p) in
    let lam_fn = Pll_lib.Pll.lambda_fn p Pll_lib.Pll.Exact in
    let lam w = lam_fn (Numeric.Cx.jomega w) in
    let sweep = Lti.Bode.sweep a ~lo:(w_ug /. 50.0) ~hi:(w0 *. 0.49) ~points in
    let lam_sweep = Lti.Bode.sweep lam ~lo:(w_ug /. 50.0) ~hi:(w0 *. 0.49) ~points in
    Experiments.Report.table pp ~title:"open-loop responses"
      ~header:[ "w/w0"; "|A| dB"; "arg A"; "|lambda| dB"; "arg lambda" ]
      (List.map2
         (fun pa pl ->
           [
             Experiments.Report.g (pa.Lti.Bode.omega /. w0);
             Experiments.Report.f3 pa.Lti.Bode.mag_db;
             Experiments.Report.f3 pa.Lti.Bode.phase_deg;
             Experiments.Report.f3 pl.Lti.Bode.mag_db;
             Experiments.Report.f3 pl.Lti.Bode.phase_deg;
           ])
         (Array.to_list sweep) (Array.to_list lam_sweep))
  in
  let doc = "Bode sweeps of A(jw) and lambda(jw)" in
  Cmd.v (Cmd.info "bode" ~doc) Term.(const run $ spec_term $ points $ strict_term)

let sweep_cmd =
  let points =
    let doc =
      "Number of ratio points, linearly spaced over [0.02, 0.5] (default: \
       the 12 paper ratios)."
    in
    Arg.(value & opt (some int) None & info [ "points" ] ~docv:"N" ~doc)
  in
  let checkpoint =
    let doc =
      "Append each computed point to a crash-safe journal at $(docv); an \
       interrupted run can be completed with --resume."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"PATH" ~doc)
  in
  let resume =
    let doc =
      "Replay the --checkpoint journal and recompute only the missing \
       points. The completed sweep is bit-identical to an uninterrupted one."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let task_timeout =
    let doc =
      "Per-point watchdog timeout in seconds; an overrunning point becomes \
       a typed timed-out failure instead of hanging the sweep."
    in
    Arg.(value & opt (some float) None & info [ "task-timeout" ] ~docv:"SECS" ~doc)
  in
  let run spec points checkpoint resume deadline task_timeout strict =
    if resume && checkpoint = None then begin
      Format.fprintf pp "error: --resume requires --checkpoint@.";
      exit 1
    end;
    with_robust ?deadline strict @@ fun () ->
    let ratios =
      match points with
      | None -> Array.of_list Experiments.Exp_fig7.default_ratios
      | Some n when n >= 2 ->
          Array.init n (fun i ->
              0.02 +. ((0.5 -. 0.02) *. float_of_int i /. float_of_int (n - 1)))
      | Some _ ->
          Format.fprintf pp "error: --points must be >= 2@.";
          exit 1
    in
    let task ratio =
      match Pll_lib.Analysis.ratio_sweep spec [ ratio ] with
      | [ row ] -> row
      | _ -> assert false
    in
    let partial =
      Runner.Run.grid ?task_timeout ?checkpoint ~resume
        ~codec:(Runner.Run.marshal_codec ()) task ratios
    in
    let rows =
      Array.to_list partial.Parallel.Sweep.values |> List.filter_map Fun.id
    in
    Experiments.Exp_fig7.print pp rows;
    if partial.Parallel.Sweep.failures <> [] then
      Format.fprintf pp "%a@." Parallel.Sweep.pp_partial partial
  in
  let doc = "Ratio sweep (Fig. 7 quantities), checkpointable and resumable" in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ spec_term $ points $ checkpoint $ resume $ deadline_term
      $ task_timeout $ strict_term)

let fig_cmd =
  let which =
    let doc =
      "Figure to regenerate: 2, 4, 5, 6, 7, perf, xchk, ablation, isf, nonideal, pfd, noise, fractional, grid or all."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIG" ~doc)
  in
  let run which deadline strict =
    with_robust ?deadline strict @@ fun () ->
    match which with
    | "2" -> Experiments.Exp_fig2.run ()
    | "4" -> Experiments.Exp_fig4.run ()
    | "5" -> Experiments.Exp_fig5.run ()
    | "6" -> Experiments.Exp_fig6.run ()
    | "7" -> Experiments.Exp_fig7.run ()
    | "perf" -> Experiments.Exp_perf.run ()
    | "xchk" -> Experiments.Exp_xchk.run ()
    | "ablation" -> Experiments.Exp_ablation.run ()
    | "isf" -> Experiments.Exp_isf.run ()
    | "nonideal" -> Experiments.Exp_nonideal.run ()
    | "pfd" -> Experiments.Exp_pfd.run ()
    | "noise" -> Experiments.Exp_noise.run ()
    | "fractional" -> Experiments.Exp_fractional.run ()
    | "grid" -> Experiments.Exp_grid.run ()
    | "all" ->
        Experiments.Exp_fig2.run ();
        Experiments.Exp_fig4.run ();
        Experiments.Exp_fig5.run ();
        Experiments.Exp_fig6.run ();
        Experiments.Exp_fig7.run ();
        Experiments.Exp_xchk.run ();
        Experiments.Exp_ablation.run ();
        Experiments.Exp_isf.run ();
        Experiments.Exp_nonideal.run ();
        Experiments.Exp_pfd.run ();
        Experiments.Exp_noise.run ();
        Experiments.Exp_fractional.run ();
        Experiments.Exp_grid.run ();
        Experiments.Exp_perf.run ()
    | other -> Format.fprintf pp "unknown figure %s@." other
  in
  let doc = "Regenerate a paper figure" in
  Cmd.v (Cmd.info "fig" ~doc)
    Term.(const run $ which $ deadline_term $ strict_term)

let sim_cmd =
  let offset =
    Arg.(value & opt float 50e3
         & info [ "offset" ] ~docv:"HZ" ~doc:"Initial VCO frequency error in Hz.")
  in
  let periods =
    Arg.(value & opt int 400 & info [ "periods" ] ~docv:"N" ~doc:"Reference periods to simulate.")
  in
  let run spec offset periods =
    with_robust false @@ fun () ->
    let p = Pll_lib.Design.synthesize spec in
    let record = Sim.Transient.acquisition p ~freq_offset:offset ~periods () in
    let period = Pll_lib.Pll.period p in
    Experiments.Report.kv pp "simulated" "%d reference periods" periods;
    Experiments.Report.kv pp "final |theta|" "%.3e s"
      (Float.abs
         (Sim.Waveform.value record.Sim.Behavioral.theta
            (Sim.Waveform.length record.Sim.Behavioral.theta - 1)));
    (match Sim.Transient.lock_time record ~tol:(period /. 1000.0) with
    | Some t -> Experiments.Report.kv pp "lock time (|theta| < T/1000)" "%.4g s (%.1f periods)" t (t /. period)
    | None -> Experiments.Report.kv pp "lock" "not acquired within the run")
  in
  let doc = "Behavioral lock-acquisition run" in
  Cmd.v (Cmd.info "sim" ~doc) Term.(const run $ spec_term $ offset $ periods)

let measure_cmd =
  let harmonic =
    Arg.(value & opt int 3 & info [ "harmonic" ] ~docv:"J" ~doc:"Modulation cycles per window.")
  in
  let window =
    Arg.(value & opt int 32 & info [ "window" ] ~docv:"P" ~doc:"Window length in reference periods.")
  in
  let run spec harmonic window strict =
    with_robust strict @@ fun () ->
    let p = Pll_lib.Design.synthesize spec in
    let m = Sim.Extract.measure_h00 p ~harmonic ~window_periods:window () in
    let open Numeric in
    Experiments.Report.kv pp "modulation frequency" "%g rad/s (w/w0 = %g)"
      m.Sim.Extract.omega (m.Sim.Extract.omega /. Pll_lib.Pll.omega0 p);
    Experiments.Report.kv pp "measured H00" "%s" (Cx.to_string m.Sim.Extract.measured);
    Experiments.Report.kv pp "HTM closed form" "%s" (Cx.to_string m.Sim.Extract.predicted);
    Experiments.Report.kv pp "LTI approximation" "%s" (Cx.to_string m.Sim.Extract.predicted_lti);
    Experiments.Report.kv pp "relative error vs HTM" "%.5f" m.Sim.Extract.rel_err
  in
  let doc = "Measure H00 from time-marching simulation" in
  Cmd.v (Cmd.info "measure" ~doc)
    Term.(const run $ spec_term $ harmonic $ window $ strict_term)

let netlist_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"SPICE-style netlist of the loop filter (charge pump at node 1).")
  in
  let sense =
    Arg.(value & opt int 1
         & info [ "sense" ] ~docv:"NODE" ~doc:"Control-voltage node (default 1).")
  in
  let run spec file sense strict =
    with_robust strict @@ fun () ->
    let src = In_channel.with_open_text file In_channel.input_all in
    let netlist =
      match Circuit.Parse.netlist ~file src with
      | n -> n
      | exception
          Robust.Pllscope_error.Error (Robust.Pllscope_error.Parse _ as e) ->
          Format.fprintf pp "%s@." (Robust.Pllscope_error.to_string e);
          (match Robust.Pllscope_error.parse_snippet ~src e with
          | Some snippet -> Format.fprintf pp "%s@." snippet
          | None -> ());
          exit 1
    in
    Format.fprintf pp "netlist:@.%a@." Circuit.Netlist.pp netlist;
    let z = Circuit.Mna.transimpedance netlist ~inject:1 ~sense in
    Experiments.Report.kv pp "transimpedance" "%s"
      (Format.asprintf "%a" Lti.Tf.pp z);
    Experiments.Report.kv pp "poles" "%s"
      (String.concat ", "
         (List.map Numeric.Cx.to_string (Lti.Tf.poles z)));
    Experiments.Report.kv pp "zeros" "%s"
      (String.concat ", "
         (List.map Numeric.Cx.to_string (Lti.Tf.zeros z)));
    let filter =
      Pll_lib.Loop_filter.of_netlist netlist ~icp:spec.Pll_lib.Design.icp ~sense ()
    in
    let vco =
      Pll_lib.Vco.time_invariant ~kvco:spec.Pll_lib.Design.kvco
        ~n_div:spec.Pll_lib.Design.n_div ~fref:spec.Pll_lib.Design.fref
    in
    let p =
      Pll_lib.Pll.make ~fref:spec.Pll_lib.Design.fref
        ~n_div:spec.Pll_lib.Design.n_div ~filter ~vco ()
    in
    Format.fprintf pp "LTI  open loop A(jw):      %a@."
      Pll_lib.Analysis.pp_loop_report (Pll_lib.Analysis.lti_report p);
    Format.fprintf pp "TV   open loop lambda(jw): %a@."
      Pll_lib.Analysis.pp_loop_report (Pll_lib.Analysis.effective_report p);
    Experiments.Report.kv pp "time-varying stable" "%s"
      (if Pll_lib.Analysis.is_stable_tv p then "yes" else "NO")
  in
  let doc = "Analyze a PLL whose loop filter is given as a netlist file" in
  Cmd.v (Cmd.info "netlist" ~doc)
    Term.(const run $ spec_term $ file $ sense $ strict_term)

let () =
  Runner.Shutdown.ignore_sigpipe ();
  Runner.Shutdown.install_handlers ();
  let doc = "time-varying frequency-domain PLL analysis (HTM formalism)" in
  let info = Cmd.info "pllscope" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
    [ analyze_cmd; bode_cmd; sweep_cmd; fig_cmd; sim_cmd; measure_cmd; netlist_cmd ]))
