(* Workload blobs shared by the farm coordinator and the farm-worker
   subprocess.

   Both sides resolve the same Marshal blob to the same task closure,
   and both encode point values with [Marshal.to_string v []] — the
   exact bytes Runner.Run.marshal_codec writes — so a farm shard journal
   holds frames byte-identical to a single-process `sweep --checkpoint`
   journal for the same points. That byte equality is what the farm's
   merge-level bit-identity guarantee reduces to. *)

type t =
  | Ratio of { spec : Pll_lib.Design.spec; ratios : float array }
  | Mc of {
      spec : Pll_lib.Design.spec;
      cfg : Experiments.Exp_nonideal.mc_config;
      points : int;
    }

let to_blob (w : t) = Marshal.to_string w []

let of_blob s : t =
  if String.length s < Marshal.header_size then
    Robust.Pllscope_error.raise_
      (Robust.Pllscope_error.Parse
         {
           file = "<blob>";
           line = 0;
           col = 0;
           msg = "Workloads.of_blob: short workload blob";
         });
  Marshal.from_string s 0

let size = function
  | Ratio { ratios; _ } -> Array.length ratios
  | Mc { points; _ } -> points

(* The single-point ratio task, shared verbatim between the in-process
   sweep path and the farm path — same closure, same floats. *)
let ratio_point spec ratio =
  match Pll_lib.Analysis.ratio_sweep spec [ ratio ] with
  | [ row ] -> row
  | _ -> assert false

(* [task w] maps a global grid index to its Marshal-encoded value. *)
let task = function
  | Ratio { spec; ratios } ->
      fun i -> Marshal.to_string (ratio_point spec ratios.(i)) []
  | Mc { spec; cfg; _ } ->
      let env = Experiments.Exp_nonideal.mc_env ~spec cfg in
      fun i -> Marshal.to_string (Experiments.Exp_nonideal.mc_point env i) []

(* Decode a farm report into the same partial summary an in-process
   checked sweep returns. *)
let partial_of_report (r : Farm.Coordinator.report) ~decode =
  {
    Parallel.Sweep.values = Array.map (Option.map decode) r.Farm.Coordinator.payloads;
    failures = r.Farm.Coordinator.failures;
    total = r.Farm.Coordinator.total;
  }
