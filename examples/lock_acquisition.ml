(* Lock acquisition with the behavioral (nonlinear) model.

   Small-signal HTM analysis assumes lock; acquisition is where the
   full sequential PFD earns its keep (frequency detection). This
   example drops the VCO at several initial frequency offsets and
   measures pull-in with the time-marching simulator, then compares the
   settled small-signal behavior with the linear prediction.

   Run with:  dune exec examples/lock_acquisition.exe *)

let () =
  let spec = { Pll_lib.Design.default_spec with Pll_lib.Design.ratio = 0.1 } in
  let pll = Pll_lib.Design.synthesize spec in
  let period = Pll_lib.Pll.period pll in
  let fref = pll.Pll_lib.Pll.fref in
  Format.printf "Loop: %a@." Pll_lib.Loop_filter.pp pll.Pll_lib.Pll.filter;
  Format.printf "@.%-14s  %-14s  %-16s@." "offset (Hz)" "offset/fref" "lock time";
  List.iter
    (fun offset ->
      let record =
        Sim.Transient.acquisition pll ~freq_offset:offset ~periods:600 ()
      in
      let lock = Sim.Transient.lock_time record ~tol:(period /. 1000.0) in
      let lock_str =
        match lock with
        | Some t -> Printf.sprintf "%.1f periods" (t /. period)
        | None -> "not locked in 600 periods"
      in
      Format.printf "%-14g  %-14.4f  %-16s@." offset
        (offset /. (fref *. pll.Pll_lib.Pll.n_div))
        lock_str)
    [ 0.0; 10e3; 50e3; 200e3; 500e3 ];
  (* settled ripple: the periodic steady state the small-signal model
     linearizes around *)
  let record = Sim.Transient.acquisition pll ~freq_offset:50e3 ~periods:600 () in
  let ripple = Sim.Transient.steady_state_ripple record ~period ~periods:20 in
  Format.printf "@.steady-state control ripple after lock: %.3e V@." ripple;
  Format.printf
    "(the impulse-train PFD model assumes this ripple's pulses are narrow:@.";
  let widths =
    List.filter_map
      (fun (t, w) ->
        if t > 500.0 *. period then Some (Float.abs w /. period) else None)
      record.Sim.Behavioral.pulses
  in
  let max_w = List.fold_left Stdlib.max 0.0 widths in
  Format.printf " widest in-lock charge-pump pulse = %.2e of a period)@." max_w
