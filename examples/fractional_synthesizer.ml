(* Fractional-N synthesis: a 64.0625 MHz output from a 1 MHz reference.

   The divider modulus is dithered by a delta-sigma modulator so its
   average is N + 1/16; the quantization waveform is a deliberate
   periodic disturbance the loop must filter — the natural playground
   for the paper's time-varying machinery. This example:

     1. verifies the loop really locks to the fractional frequency,
     2. measures the fractional spur at w0/16 for three modulator
        orders and compares the first-order case against the analytic
        sawtooth + |H00| estimate,
     3. shows the design tradeoff: a faster loop passes more
        quantization noise.

   Run with:  dune exec examples/fractional_synthesizer.exe *)

let n_int = 64
let b = 16
let frac = 1.0 /. float_of_int b

let spur_for ~ratio ~modulator =
  let spec =
    {
      Pll_lib.Design.default_spec with
      Pll_lib.Design.n_div = float_of_int n_int +. frac;
      ratio;
    }
  in
  let pll = Pll_lib.Design.synthesize spec in
  let record =
    Sim.Fractional.run pll
      { Sim.Fractional.modulator; n_int; frac }
      ~steps_per_period:64 ~periods:2048 ()
  in
  let spur =
    Sim.Fractional.spur_dbc record ~pll ~frac_denominator:b ~harmonic:1
      ~periods:(1024 / b * b)
  in
  (pll, record, spur)

let () =
  Format.printf "Fractional-N synthesizer: N = %d + 1/%d, f_vco = %.4f MHz@.@."
    n_int b ((float_of_int n_int +. frac) *. 1.0);

  (* 1. lock check at ratio 0.01 *)
  let pll, record, _ = spur_for ~ratio:0.01 ~modulator:Sim.Fractional.Mash3 in
  let period = Pll_lib.Pll.period pll in
  let theta = record.Sim.Behavioral.theta in
  let n = Sim.Waveform.length theta in
  let tail_max =
    let m = ref 0.0 in
    for i = n - (n / 8) to n - 1 do
      m := Float.max !m (Float.abs (Sim.Waveform.value theta i))
    done;
    !m
  in
  Format.printf "locked to the fractional frequency: |theta| tail = %.2e of a period@.@."
    (tail_max /. period);

  (* 2. modulator comparison at ratio 0.01 *)
  Format.printf "fractional spur at w0/%d (loop ratio 0.01):@." b;
  let predicted =
    Sim.Fractional.predicted_first_order_spur_dbc pll ~frac_denominator:b
  in
  List.iter
    (fun (name, m) ->
      let _, _, spur = spur_for ~ratio:0.01 ~modulator:m in
      Format.printf "  %-12s %7.1f dBc%s@." name spur
        (if m = Sim.Fractional.First_order then
           Printf.sprintf "   (sawtooth model predicts %.1f)" predicted
         else ""))
    [
      ("first-order", Sim.Fractional.First_order);
      ("MASH 1-1", Sim.Fractional.Mash2);
      ("MASH 1-1-1", Sim.Fractional.Mash3);
    ];

  (* 3. bandwidth tradeoff for the first-order modulator *)
  Format.printf "@.first-order spur vs loop speed (the loop is the spur filter):@.";
  List.iter
    (fun ratio ->
      let _, _, spur = spur_for ~ratio ~modulator:Sim.Fractional.First_order in
      Format.printf "  w_UG/w0 = %-5g  spur = %6.1f dBc@." ratio spur)
    [ 0.005; 0.01; 0.02 ];
  Format.printf
    "@.Halving the bandwidth buys ~12 dB of spur (two poles of rolloff):@.";
  Format.printf "fractional-N couples spur budget directly to loop dynamics.@."
