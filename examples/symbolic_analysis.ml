(* Symbolic analysis: the paper's "symbolic expressions" claim.

   The rank-one HTM closure gives the effective open-loop gain as a
   finite closed form; with component values kept symbolic, the whole
   derivation can be carried out in a small CAS and the result printed,
   differentiated, and evaluated. This example:

     1. prints A(s) and lambda(s) over the component symbols,
     2. validates the symbolic expressions against the independent
        numeric pipeline,
     3. uses symbolic differentiation to rank design sensitivities:
        which component moves the loop stability fastest?

   Run with:  dune exec examples/symbolic_analysis.exe *)

open Numeric
module Expr = Symbolic.Expr
module Sym = Symbolic.Sym_pll

let () =
  Format.printf "Classical open loop (eq. 35), symbolically:@.  A(s) = %s@.@."
    (Expr.to_string Sym.a_expr);
  Format.printf
    "Effective open loop (eq. 37) in closed form - no truncated series:@.  lambda(s) = %s@.@."
    (Expr.to_string Sym.lambda_expr);

  (* numeric cross-check on a concrete design *)
  let pll = Pll_lib.Design.synthesize Pll_lib.Design.default_spec in
  let w0 = Pll_lib.Pll.omega0 pll in
  let s = Cx.jomega (0.2 *. w0) in
  let sym_v = Sym.eval_lambda pll s in
  let num_v = Pll_lib.Pll.lambda pll s in
  Format.printf
    "Check at s = j0.2*w0: symbolic %s vs numeric %s (rel dev %.1e)@.@."
    (Cx.to_string sym_v) (Cx.to_string num_v)
    (Cx.abs (Cx.sub sym_v num_v) /. Cx.abs num_v);

  (* sensitivity ranking at the effective crossover: d|1+lambda|/d(p)
     tells which component most endangers the margin *)
  let eff = Pll_lib.Analysis.effective_report pll in
  let w_ug_eff =
    Option.value ~default:(0.1 *. w0) eff.Pll_lib.Analysis.omega_ug
  in
  let s_ug = Cx.jomega w_ug_eff in
  Format.printf "Relative sensitivities of lambda at the effective crossover:@.";
  List.iter
    (fun name ->
      let dl = Sym.sensitivity Sym.lambda_expr ~wrt:name pll ~s:s_ug in
      let value = Expr.eval (Sym.env_of_pll pll ~s:s_ug) (Expr.sym name) in
      let lam = Sym.eval_lambda pll s_ug in
      (* normalized sensitivity: (p / lambda) dlambda/dp *)
      let norm = Cx.div (Cx.mul value dl) lam in
      Format.printf "  %-5s  (p/lambda)*dlambda/dp = %s@." name (Cx.to_string norm))
    [ "R"; "C1"; "C2"; "Icp"; "Kv" ];
  Format.printf
    "@.(Icp, Kv and R scale the loop gain almost identically; C2 acts through@.";
  Format.printf
    " the parasitic pole - the classic tuning knobs, now derived, not recalled.)@."
