(* Designing a fast PLL with the time-varying analysis in the loop.

   Scenario: a frequency synthesizer needs the widest possible loop
   bandwidth (to suppress VCO noise) with a *true* phase margin of at
   least 45 degrees. Textbook flow designs for 45 deg on A(jw) — and
   silently loses margin to the sampling PFD. This example closes the
   design loop on lambda(jw) instead, using
   Pll_lib.Analysis.design_for_effective_margin, and reports the price
   in over-design at several loop speeds.

   Run with:  dune exec examples/fast_loop_design.exe *)

let target_pm = 45.0

let () =
  Format.printf
    "Designing for a TRUE (time-varying) phase margin of %.0f deg:@.@." target_pm;
  Format.printf "%-8s  %-12s  %-12s  %-12s  %-10s@." "w_UG/w0" "naive PM(eff)"
    "LTI target" "achieved PM" "over-design";
  List.iter
    (fun ratio ->
      let base = { Pll_lib.Design.default_spec with Pll_lib.Design.ratio } in
      let naive =
        let p =
          Pll_lib.Design.synthesize
            { base with Pll_lib.Design.phase_margin_deg = target_pm }
        in
        (Pll_lib.Analysis.effective_report p).Pll_lib.Analysis.phase_margin_deg
      in
      let naive_str =
        match naive with
        | Some pm -> Printf.sprintf "%.1f deg" pm
        | None -> "unstable"
      in
      match Pll_lib.Analysis.design_for_effective_margin base ~target_deg:target_pm with
      | Some (spec, achieved) ->
          Format.printf "%-8g  %-12s  %-12s  %-12s  %-10s@." ratio naive_str
            (Printf.sprintf "%.1f deg" spec.Pll_lib.Design.phase_margin_deg)
            (Printf.sprintf "%.1f deg" achieved)
            (Printf.sprintf "+%.1f deg"
               (spec.Pll_lib.Design.phase_margin_deg -. target_pm))
      | None ->
          Format.printf "%-8g  %-12s  %-12s@." ratio naive_str
            "no feasible design (loop too fast)")
    [ 0.05; 0.1; 0.15; 0.2; 0.25 ];
  Format.printf
    "@.Reading: 'naive' designs A(jw) for %.0f deg and hopes; the right column@."
    target_pm;
  Format.printf
    "shows how much extra LTI margin must be budgeted so the sampled loop@.";
  Format.printf "actually delivers %.0f deg.@." target_pm
