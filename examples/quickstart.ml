(* Quickstart: build a charge-pump PLL, compare what classical LTI
   analysis and the paper's time-varying (HTM) analysis say about it,
   and check the prediction against a time-marching simulation.

   Run with:  dune exec examples/quickstart.exe *)

open Numeric

let () =
  (* A 64 MHz clock synthesizer from a 1 MHz reference. The loop is
     deliberately fast: unity gain at 20 % of the reference frequency,
     where textbook (LTI) analysis starts to mislead. *)
  let spec =
    {
      Pll_lib.Design.fref = 1.0e6;
      n_div = 64.0;
      icp = 100e-6;
      kvco = 20e6;
      ratio = 0.2;
      phase_margin_deg = 55.0;
    }
  in
  let pll = Pll_lib.Design.synthesize spec in
  Format.printf "Loop filter: %a@." Pll_lib.Loop_filter.pp pll.Pll_lib.Pll.filter;

  (* 1. Classical LTI story: open loop A(s) = (w0/2pi) (v0/s) H_LF(s) *)
  let lti = Pll_lib.Analysis.lti_report pll in
  Format.printf "LTI analysis:          %a@." Pll_lib.Analysis.pp_loop_report lti;

  (* 2. Time-varying story: effective open loop lambda(jw) = sum_m A(jw + jm w0),
     evaluated in closed form via partial fractions + coth lattice sums. *)
  let tv = Pll_lib.Analysis.effective_report pll in
  Format.printf "Time-varying analysis: %a@." Pll_lib.Analysis.pp_loop_report tv;

  (* 3. Closed-loop consequences: bandwidth shift and peaking. *)
  let m = Pll_lib.Analysis.closed_loop_metrics pll in
  Format.printf "Closed loop: peaking %.2f dB at %.3g rad/s@."
    m.Pll_lib.Analysis.peak_db m.Pll_lib.Analysis.peak_freq;

  (* 4. Check one closed-loop point against the behavioral simulator
     (flip-flop PFD with real pulse widths). *)
  let meas = Sim.Extract.measure_h00 pll ~harmonic:3 ~window_periods:24 () in
  Format.printf
    "H00 at w = %.3g rad/s: simulated %.4f, HTM %.4f, LTI %.4f (sim vs HTM: %.2f%%)@."
    meas.Sim.Extract.omega
    (Cx.abs meas.Sim.Extract.measured)
    (Cx.abs meas.Sim.Extract.predicted)
    (Cx.abs meas.Sim.Extract.predicted_lti)
    (100.0 *. meas.Sim.Extract.rel_err);

  (* 5. The punchline: the LTI margin is a mirage for fast loops. *)
  match (lti.Pll_lib.Analysis.phase_margin_deg, tv.Pll_lib.Analysis.phase_margin_deg) with
  | Some a, Some b ->
      Format.printf
        "LTI promises %.1f deg of phase margin; the sampling PFD leaves only %.1f deg.@."
        a b
  | _ -> ()
