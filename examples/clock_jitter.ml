(* Reference-noise folding and output jitter.

   The sampling PFD aliases reference noise from around every harmonic
   of the reference down to baseband (the rank-one HTM: every band
   transfers into every band). Classical LTI analysis misses the folded
   terms entirely. This example propagates a broadband reference noise
   floor and a 1/w^2 VCO noise profile through the closed loop, compares
   the LTI and time-varying output spectra, and integrates RMS jitter.

   Run with:  dune exec examples/clock_jitter.exe *)


let () =
  let spec = { Pll_lib.Design.default_spec with Pll_lib.Design.ratio = 0.15 } in
  let pll = Pll_lib.Design.synthesize spec in
  let w0 = Pll_lib.Pll.omega0 pll in
  (* Reference: white time-jitter floor with a gentle roll-off far out
     (a crystal driver); VCO: diffusive 1/w^2 phase noise. Levels are
     illustrative (s^2 s/rad). *)
  let s_ref = Pll_lib.Noise.lorentzian ~level:1e-30 ~corner:(20.0 *. w0) in
  let s_vco = Pll_lib.Noise.one_over_f2 1e-20 in
  let rows =
    List.map
      (fun frac ->
        let w = frac *. w0 in
        let tv = Pll_lib.Noise.reference_noise_out pll s_ref w in
        let lti = Pll_lib.Noise.lti_reference_noise_out pll s_ref w in
        let vco = Pll_lib.Noise.vco_noise_out pll s_vco w in
        (frac, lti, tv, vco))
      [ 0.001; 0.003; 0.01; 0.03; 0.1; 0.2; 0.3; 0.45 ]
  in
  Format.printf "%-8s  %-14s  %-14s  %-12s  %-10s@." "w/w0" "S_ref->out LTI"
    "S_ref->out TV" "TV/LTI" "S_vco->out";
  List.iter
    (fun (frac, lti, tv, vco) ->
      Format.printf "%-8g  %-14.4e  %-14.4e  %-12.2f  %-10.3e@." frac lti tv
        (tv /. lti) vco)
    rows;
  (* RMS jitter integrated across the loop band *)
  let total w =
    Pll_lib.Noise.reference_noise_out pll s_ref w
    +. Pll_lib.Noise.vco_noise_out pll s_vco w
  in
  let lti_total w =
    Pll_lib.Noise.lti_reference_noise_out pll s_ref w
    +. Pll_lib.Noise.vco_noise_out pll s_vco w
  in
  let lo = 1e-4 *. w0 and hi = 0.49 *. w0 in
  let j_tv = Pll_lib.Noise.rms_jitter total ~lo ~hi in
  let j_lti = Pll_lib.Noise.rms_jitter lti_total ~lo ~hi in
  Format.printf "@.RMS jitter over [%.0e, %.0e] rad/s:@." lo hi;
  Format.printf "  time-varying model: %.4g s@." j_tv;
  Format.printf "  LTI model:          %.4g s  (underestimates by %.1f%%)@."
    j_lti
    (100.0 *. ((j_tv /. j_lti) -. 1.0));
  Format.printf
    "@.The gap is the aliased reference noise the sampler folds into the loop@.";
  Format.printf "band - invisible to LTI analysis by construction.@."
