(* The HTM core beyond PLLs: a chopper-stabilized amplifier.

   A chopper amplifier up-modulates its input with a square wave m(t),
   amplifies away from the 1/f corner, and demodulates with the same
   square wave:

       y = m(t) * [ H( m(t) * u ) ]

   This is an LPTV system, exactly the kind the paper's HTM calculus is
   built for: two Toeplitz (memoryless-multiplication) blocks around a
   diagonal (LTI) block. This example builds the composite HTM, reads
   off the baseband transfer and the residual chopper-ripple conversion
   terms, and checks the baseband result against the textbook series
   sum_k |m_k|^2 H(s + j k w_chop).

   Run with:  dune exec examples/chopper_amplifier.exe *)

open Numeric
module Htm = Htm_core.Htm
module Lptv = Htm_core.Lptv

let () =
  let f_chop = 50e3 in
  let w_chop = 2.0 *. Float.pi *. f_chop in
  (* amplifier: gain 1000, single pole at 2 MHz - well above the chop *)
  let amp = Lti.Tf.scale 1000.0 (Lti.Tf.first_order_pole (2.0 *. Float.pi *. 2e6)) in
  (* +-1 square-wave modulator, truncated to 9 harmonics *)
  let max_harmonic = 9 in
  let square t = if Float.rem t (1.0 /. f_chop) < 0.5 /. f_chop then 1.0 else -1.0 in
  let m_coeffs =
    Lptv.coeffs_of_function square ~period:(1.0 /. f_chop) ~max_harmonic ()
  in
  let chopper =
    Htm.series_list
      [
        Htm.periodic_gain m_coeffs;
        Htm.lti (Lti.Tf.eval amp);
        Htm.periodic_gain m_coeffs;
      ]
  in
  let ctx = Htm.ctx ~n_harm:(2 * max_harmonic) ~omega0:w_chop in

  Format.printf "Chopper amplifier: gain 1000, pole 2 MHz, chop %g kHz@."
    (f_chop /. 1e3);
  Format.printf "@.%-12s  %-14s  %-14s  %-12s@." "f (Hz)" "|H00| composite"
    "series formula" "ripple |H_{2,0}|";
  List.iter
    (fun f ->
      let w = 2.0 *. Float.pi *. f in
      let h00 = Htm.baseband ctx chopper w in
      (* textbook folding formula: only odd harmonics of the square wave
         carry signal; each contributes |m_k|^2 H(jw + jk w_chop) *)
      let series =
        let acc = ref Cx.zero in
        for k = -max_harmonic to max_harmonic do
          let mk = m_coeffs.(k + max_harmonic) in
          if Cx.abs mk > 0.0 then
            acc :=
              Cx.add !acc
                (Cx.mul (Cx.mul mk (Cx.conj mk))
                   (Lti.Tf.eval amp
                      (Cx.jomega (w +. (float_of_int k *. w_chop)))))
        done;
        !acc
      in
      let ripple = Htm.element ctx chopper ~n:2 ~m:0 (Cx.jomega w) in
      Format.printf "%-12g  %-14.2f  %-14.2f  %-12.4f@." f (Cx.abs h00)
        (Cx.abs series) (Cx.abs ripple))
    [ 10.0; 100.0; 1e3; 1e4 ];

  (* the point of chopping: the *baseband* path through the amplifier is
     zero - dc offset and 1/f noise of the amplifier do not reach the
     output at dc; they are up-converted to the chop harmonics *)
  let offset_path =
    (* offset enters after the first modulator: series of demodulator
       and amplifier only *)
    Htm.series (Htm.periodic_gain m_coeffs) (Htm.lti (Lti.Tf.eval amp))
  in
  let dc_leak = Htm.element ctx offset_path ~n:0 ~m:0 (Cx.jomega 10.0) in
  let up_converted = Htm.element ctx offset_path ~n:1 ~m:0 (Cx.jomega 10.0) in
  Format.printf
    "@.Amplifier dc-offset path: |to baseband| = %.4f, |to 1st chop harmonic| = %.1f@."
    (Cx.abs dc_leak) (Cx.abs up_converted);
  Format.printf
    "-> offset is pushed to %g kHz instead of corrupting dc: chopping works.@."
    (f_chop /. 1e3)
