(* A single lint diagnostic, printed GNU-style as
   [file:line:col: [rule] message] so editors and CI annotate it.
   Findings also carry the analysis tier that produced them and an
   optional per-rule fix-it hint; both ride along into the --json and
   --sarif renderings (the plain-text line format stays stable). *)

type tier = Untyped | Typed

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  tier : tier;
  hint : string option;
}

let make ~file ~line ~col ~rule ~message =
  { file; line; col; rule; message; tier = Untyped; hint = None }

let of_loc ~file ~rule ~message (loc : Location.t) =
  let p = loc.loc_start in
  {
    file;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    rule;
    message;
    tier = Untyped;
    hint = None;
  }

let with_tier tier f = { f with tier }
let with_hint hint f = { f with hint }

let tier_name = function Untyped -> "untyped" | Typed -> "typed"

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

(* Minimal JSON string escaping — the subset our messages can contain. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  let hint =
    match f.hint with
    | None -> ""
    | Some h -> Printf.sprintf ",\"hint\":\"%s\"" (json_escape h)
  in
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"tier\":\"%s\",\"message\":\"%s\"%s}"
    (json_escape f.file) f.line f.col (json_escape f.rule)
    (tier_name f.tier) (json_escape f.message) hint
