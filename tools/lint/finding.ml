(* A single lint diagnostic, printed GNU-style as
   [file:line:col: [rule] message] so editors and CI annotate it. *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let make ~file ~line ~col ~rule ~message = { file; line; col; rule; message }

let of_loc ~file ~rule ~message (loc : Location.t) =
  let p = loc.loc_start in
  {
    file;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    rule;
    message;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message
