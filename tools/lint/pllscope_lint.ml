(* pllscope-lint — static analysis gate for the pllscope tree.

   Two tiers share one driver:

   - the untyped tier parses .ml sources (compiler-libs Parse +
     Ast_iterator) and runs the fast syntactic rules;
   - the typed tier loads the .cmt files the regular dune build already
     produced (Cmt_format + Tast_iterator) and runs semantic rules over
     resolved paths and inferred types.

   Usage:
     pllscope_lint [--typed | --untyped] [--cmt-root DIR] [--path-root DIR]
                   [--allowlist FILE] [--baseline FILE]
                   [--write-baseline FILE] [--json] [--sarif FILE] [--hints]
                   [--lib-prefix DIR] [--list-rules] PATH...

   PATHs are .ml files or directories (recursed, sorted, hidden and
   underscore-prefixed directories skipped). Rules scoped to library
   code (mli-coverage, nondeterminism, catch-all — and the whole typed
   tier) apply to files under a --lib-prefix root (default "lib").
   A file's companion .mli may carry [@@@lint.allow] attributes that
   cover the pair. The typed tier needs --cmt-root (the build context
   root, "." when run by the dune @lint rule); files without a cmt fall
   back to untyped-only coverage. When both tiers run, the typed
   float-eq supersedes the untyped heuristic on every file it covered.

   --baseline FILE suppresses known findings ("rule path" lines) so the
   gate only fails on drift; stale entries are reported on stderr.
   --write-baseline regenerates that file from the current findings.
   --json / --sarif render machine-readable output for CI annotation.

   Exit status: 0 clean (or fully baselined), 1 findings, 2 usage or
   I/O error. *)

let usage () =
  prerr_endline
    "usage: pllscope_lint [--typed|--untyped] [--cmt-root DIR] [--path-root \
     DIR] [--allowlist FILE] [--baseline FILE] [--write-baseline FILE] \
     [--json] [--sarif FILE] [--hints] [--lib-prefix DIR] [--list-rules] \
     PATH...";
  exit 2

(* ------------------------------------------------------------------ *)
(* rule catalog: name -> description, tier, fix-it hint                *)

let hint_of_rule = function
  | "float-eq" ->
      Some
        "use Float.equal/Float.compare; Cx.is_zero/Cx.approx for complex \
         values; a type-specific equal for containers"
  | "pool-purity" ->
      Some
        "return per-task results and let the pool collect them; use \
         Sweep.grid_local for lane-owned mutable workspaces"
  | "nondeterminism" ->
      Some
        "take time as a parameter; use the seeded Numeric.Prng for \
         randomness"
  | "mli-coverage" -> Some "add a sibling .mli pinning the public API"
  | "error-message-prefix" ->
      Some "start the message with 'Module.function: '"
  | "catch-all" ->
      Some "match the exceptions you expect, or bind the exception and \
            re-raise it"
  | "raw-result-write" ->
      Some "route the write through Runner.Atomic_file (temp + fsync + \
            rename)"
  | "bad-allow" -> Some "check the rule name against --list-rules"
  | "hot-alloc" ->
      Some
        "hoist the allocation into plan/workspace construction, or justify \
         the cold path with [@lint.allow \"hot-alloc\"] and a comment"
  | "lane-escape" ->
      Some
        "keep lane state inside the task: copy scalars out of plan views \
         and return fresh data only"
  | "oracle-only" ->
      Some
        "call the _checked variant, or move this use into an \
         oracle/fallback/experiment/test module"
  | "ignored-result" ->
      Some
        "match on Ok/Error and decide about the degradation (count \
         fallbacks in Robust.Stats); do not drop the result"
  | _ -> None

let catalog =
  List.map (fun (n, d) -> (n, d, "untyped")) Rules.all_rules
  @ List.filter_map
      (fun (n, d) ->
        (* float-eq appears in both tiers under one id *)
        if List.mem_assoc n Rules.all_rules then None else Some ((n, d, "typed")))
      Typed_rules.all_rules

let valid_rules = List.map (fun (n, _, _) -> n) catalog

let list_rules () =
  List.iter
    (fun (name, desc, tier) ->
      Printf.printf "%-22s [%s] %s\n" name tier desc;
      match hint_of_rule name with
      | Some h -> Printf.printf "%-22s   fix: %s\n" "" h
      | None -> ())
    catalog;
  exit 0

(* ------------------------------------------------------------------ *)
(* allowlist / baseline files: lines of "rule path", '#' comments      *)

let load_pairs ~what path =
  if not (Sys.file_exists path) then (
    Printf.eprintf "pllscope_lint: %s %s not found\n" what path;
    exit 2);
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if String.length line > 0 && line.[0] <> '#' then
         match String.index_opt line ' ' with
         | Some i ->
             let rule = String.sub line 0 i in
             let file =
               String.trim (String.sub line (i + 1) (String.length line - i - 1))
             in
             entries := (rule, file) :: !entries
         | None ->
             Printf.eprintf
               "pllscope_lint: malformed %s line (want 'rule path'): %s\n"
               what line;
             exit 2
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

let pair_matches (rule, file) (f : Finding.t) =
  String.equal rule f.Finding.rule && String.equal file f.Finding.file

(* ------------------------------------------------------------------ *)
(* source collection                                                   *)

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if String.length entry = 0 || entry.[0] = '.' || entry.[0] = '_' then
             acc
           else collect_ml acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      Parse.implementation lexbuf)

let parse_interface path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      Parse.interface lexbuf)

let in_lib ~lib_prefixes path =
  List.exists
    (fun p ->
      let p = if Filename.check_suffix p "/" then p else p ^ "/" in
      String.starts_with ~prefix:p path)
    lib_prefixes

(* [@@@lint.allow] attributes from the companion .mli, plus any
   bad-allow findings its attributes produced. *)
let mli_allows path =
  let mli = path ^ "i" in
  if not (Sys.file_exists mli) then ([], [])
  else
    match parse_interface mli with
    | exception _ -> ([], []) (* unparsable mli surfaces elsewhere *)
    | signature ->
        let ctx = Rules.make_ctx ~file:mli ~in_lib:false ~valid_rules () in
        let allows = Rules.interface_allows ctx signature in
        (allows, List.rev ctx.Rules.findings)

let lint_file_untyped ~lib_prefixes path =
  let extra_allowed, mli_findings = mli_allows path in
  let ctx =
    Rules.make_ctx ~file:path ~in_lib:(in_lib ~lib_prefixes path)
      ~extra_allowed ~valid_rules ()
  in
  match parse_file path with
  | structure -> mli_findings @ Rules.lint_structure ctx structure
  | exception exn ->
      let loc, msg =
        match Location.error_of_exn exn with
        | Some (`Ok e) ->
            (e.Location.main.loc, Format.asprintf "%t" e.Location.main.txt)
        | _ -> (Location.none, Printexc.to_string exn)
      in
      mli_findings
      @ [ Finding.of_loc ~file:path ~rule:"parse-error" ~message:msg loc ]

let lint_file_typed ~cmt_index ~path_root path =
  match Cmt_loader.find_cmt cmt_index path with
  | None -> None
  | Some cmt_path -> (
      match Cmt_loader.load ~path_root cmt_path with
      | None -> None
      | Some loaded ->
          let extra_allowed, _ = mli_allows path in
          let ctx = Typed_rules.make_ctx ~file:path ~extra_allowed in
          Some (Typed_rules.lint_structure ctx loaded.Cmt_loader.structure))

(* ------------------------------------------------------------------ *)
(* driver                                                              *)

type mode = Both | Typed_only | Untyped_only

let () =
  let allowlist = ref [] in
  let baseline = ref None in
  let write_baseline = ref None in
  let lib_prefixes = ref [] in
  let paths = ref [] in
  let mode = ref Both in
  let cmt_root = ref None in
  let path_root = ref "." in
  let json = ref false in
  let sarif = ref None in
  let hints = ref false in
  let rec parse_args = function
    | [] -> ()
    | "--list-rules" :: _ -> list_rules ()
    | "--typed" :: rest ->
        mode := Typed_only;
        parse_args rest
    | "--untyped" :: rest ->
        mode := Untyped_only;
        parse_args rest
    | "--json" :: rest ->
        json := true;
        parse_args rest
    | "--hints" :: rest ->
        hints := true;
        parse_args rest
    | "--sarif" :: file :: rest ->
        sarif := Some file;
        parse_args rest
    | "--cmt-root" :: dir :: rest ->
        cmt_root := Some dir;
        parse_args rest
    | "--path-root" :: dir :: rest ->
        path_root := dir;
        parse_args rest
    | "--allowlist" :: file :: rest ->
        allowlist := load_pairs ~what:"allowlist" file @ !allowlist;
        parse_args rest
    | "--baseline" :: file :: rest ->
        baseline := Some (load_pairs ~what:"baseline" file);
        parse_args rest
    | "--write-baseline" :: file :: rest ->
        write_baseline := Some file;
        parse_args rest
    | "--lib-prefix" :: dir :: rest ->
        lib_prefixes := dir :: !lib_prefixes;
        parse_args rest
    | ( "--allowlist" | "--lib-prefix" | "--cmt-root" | "--path-root"
      | "--baseline" | "--write-baseline" | "--sarif" )
      :: [] ->
        usage ()
    | arg :: _ when String.starts_with ~prefix:"-" arg -> usage ()
    | path :: rest ->
        paths := path :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  if !mode = Typed_only && !cmt_root = None then (
    prerr_endline "pllscope_lint: --typed requires --cmt-root DIR";
    exit 2);
  let lib_prefixes = if !lib_prefixes = [] then [ "lib" ] else !lib_prefixes in
  let files =
    List.fold_left
      (fun acc p ->
        if not (Sys.file_exists p) then (
          Printf.eprintf "pllscope_lint: no such file or directory: %s\n" p;
          exit 2);
        collect_ml acc p)
      [] (List.rev !paths)
    |> List.sort_uniq String.compare
  in
  (* untyped tier *)
  let untyped_findings =
    if !mode = Typed_only then []
    else List.concat_map (lint_file_untyped ~lib_prefixes) files
  in
  (* typed tier: library files that have a cmt under --cmt-root *)
  let typed_findings, covered =
    match (!mode, !cmt_root) with
    | Untyped_only, _ | _, None -> ([], [])
    | _, Some root ->
        let cmt_index = Cmt_loader.index ~cmt_root:root in
        List.fold_left
          (fun (fs, covered) file ->
            if not (in_lib ~lib_prefixes file) then (fs, covered)
            else
              match
                lint_file_typed ~cmt_index ~path_root:!path_root file
              with
              | None -> (fs, covered)
              | Some findings -> (findings @ fs, file :: covered))
          ([], []) files
  in
  (* the typed float-eq supersedes the untyped heuristic where it ran *)
  let untyped_findings =
    List.filter
      (fun (f : Finding.t) ->
        not
          (String.equal f.Finding.rule "float-eq"
          && List.mem f.Finding.file covered))
      untyped_findings
  in
  let findings =
    untyped_findings @ typed_findings
    |> List.filter (fun f ->
           not (List.exists (fun p -> pair_matches p f) !allowlist))
    |> List.map (fun (f : Finding.t) ->
           Finding.with_hint (hint_of_rule f.Finding.rule) f)
    |> List.sort_uniq Finding.compare
  in
  (match !write_baseline with
  | Some file ->
      let seen = Hashtbl.create 16 in
      let pairs =
        List.filter
          (fun (f : Finding.t) ->
            let key = (f.Finding.rule, f.Finding.file) in
            if Hashtbl.mem seen key then false
            else (
              Hashtbl.add seen key ();
              true))
          findings
      in
      let oc = open_out file in
      output_string oc
        "# pllscope-lint baseline — known findings the gate tolerates.\n\
         # Regenerate with --write-baseline; remove lines as debt is paid.\n";
      List.iter
        (fun (f : Finding.t) ->
          Printf.fprintf oc "%s %s\n" f.Finding.rule f.Finding.file)
        pairs;
      close_out oc;
      exit 0
  | None -> ());
  (* baseline split: drifted findings fail, matched ones are tolerated *)
  let drifted, baselined, stale =
    match !baseline with
    | None -> (findings, [], [])
    | Some entries ->
        let drifted, baselined =
          List.partition
            (fun f -> not (List.exists (fun p -> pair_matches p f) entries))
            findings
        in
        let stale =
          List.filter
            (fun p -> not (List.exists (pair_matches p) findings))
            entries
        in
        (drifted, baselined, stale)
  in
  (match !sarif with
  | Some path ->
      let rules =
        List.map (fun (n, d, _) -> (n, d, hint_of_rule n)) catalog
      in
      Sarif.write ~path ~rules drifted
  | None -> ());
  if !json then begin
    print_endline "[";
    List.iteri
      (fun i f ->
        print_string (Finding.to_json f);
        if i < List.length drifted - 1 then print_endline "," else print_newline ())
      drifted;
    print_endline "]"
  end
  else
    List.iter
      (fun f ->
        print_endline (Finding.to_string f);
        if !hints then
          match f.Finding.hint with
          | Some h -> Printf.printf "    fix: %s\n" h
          | None -> ())
      drifted;
  List.iter
    (fun (rule, file) ->
      Printf.eprintf
        "pllscope_lint: stale baseline entry (no such finding): %s %s\n" rule
        file)
    stale;
  if baselined <> [] then
    Printf.eprintf "pllscope_lint: %d finding(s) matched the baseline\n"
      (List.length baselined);
  if drifted <> [] then (
    Printf.eprintf "pllscope_lint: %d finding(s)\n" (List.length drifted);
    exit 1)
