(* pllscope-lint — static analysis gate for the pllscope tree.

   Usage:
     pllscope_lint [--allowlist FILE] [--lib-prefix DIR] [--list-rules] PATH...

   PATHs are .ml files or directories (recursed, sorted, hidden and
   underscore-prefixed directories skipped). Rules scoped to library
   code (mli-coverage, nondeterminism) apply to files under a
   --lib-prefix root (default "lib"). Exit status: 0 clean, 1 findings,
   2 usage or I/O error. *)

let usage () =
  prerr_endline
    "usage: pllscope_lint [--allowlist FILE] [--lib-prefix DIR] [--list-rules] \
     PATH...";
  exit 2

let list_rules () =
  List.iter
    (fun (name, desc) -> Printf.printf "%-22s %s\n" name desc)
    Rules.all_rules;
  exit 0

(* allowlist file: lines of "rule path", '#' comments; a finding whose
   rule and file both match is dropped. *)
let load_allowlist path =
  if not (Sys.file_exists path) then (
    Printf.eprintf "pllscope_lint: allowlist %s not found\n" path;
    exit 2);
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if String.length line > 0 && line.[0] <> '#' then
         match String.index_opt line ' ' with
         | Some i ->
             let rule = String.sub line 0 i in
             let file =
               String.trim (String.sub line (i + 1) (String.length line - i - 1))
             in
             entries := (rule, file) :: !entries
         | None ->
             Printf.eprintf
               "pllscope_lint: malformed allowlist line (want 'rule path'): %s\n"
               line;
             exit 2
     done
   with End_of_file -> ());
  close_in ic;
  !entries

let allowlisted entries (f : Finding.t) =
  List.exists
    (fun (rule, file) -> String.equal rule f.Finding.rule && String.equal file f.Finding.file)
    entries

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if String.length entry = 0 || entry.[0] = '.' || entry.[0] = '_' then
             acc
           else collect_ml acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      Parse.implementation lexbuf)

let lint_file ~lib_prefixes path =
  let in_lib =
    List.exists
      (fun p ->
        let p = if Filename.check_suffix p "/" then p else p ^ "/" in
        String.starts_with ~prefix:p path)
      lib_prefixes
  in
  let ctx = Rules.make_ctx ~file:path ~in_lib in
  match parse_file path with
  | structure -> Rules.lint_structure ctx structure
  | exception exn ->
      let loc, msg =
        match Location.error_of_exn exn with
        | Some (`Ok e) ->
            (e.Location.main.loc, Format.asprintf "%t" e.Location.main.txt)
        | _ -> (Location.none, Printexc.to_string exn)
      in
      [ Finding.of_loc ~file:path ~rule:"parse-error" ~message:msg loc ]

let () =
  let allowlist = ref [] in
  let lib_prefixes = ref [] in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--list-rules" :: _ -> list_rules ()
    | "--allowlist" :: file :: rest ->
        allowlist := load_allowlist file @ !allowlist;
        parse_args rest
    | "--lib-prefix" :: dir :: rest ->
        lib_prefixes := dir :: !lib_prefixes;
        parse_args rest
    | ("--allowlist" | "--lib-prefix") :: [] -> usage ()
    | arg :: _ when String.starts_with ~prefix:"-" arg -> usage ()
    | path :: rest ->
        paths := path :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  let lib_prefixes = if !lib_prefixes = [] then [ "lib" ] else !lib_prefixes in
  let files =
    List.fold_left
      (fun acc p ->
        if not (Sys.file_exists p) then (
          Printf.eprintf "pllscope_lint: no such file or directory: %s\n" p;
          exit 2);
        collect_ml acc p)
      [] (List.rev !paths)
    |> List.sort_uniq String.compare
  in
  let findings =
    List.concat_map (lint_file ~lib_prefixes) files
    |> List.filter (fun f -> not (allowlisted !allowlist f))
    |> List.sort Finding.compare
  in
  List.iter (fun f -> print_endline (Finding.to_string f)) findings;
  if findings <> [] then (
    Printf.eprintf "pllscope_lint: %d finding(s)\n" (List.length findings);
    exit 1)
