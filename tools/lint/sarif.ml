(* Minimal SARIF 2.1.0 rendering of lint findings, for CI inline
   annotation (github/codeql-action/upload-sarif). Hand-rolled JSON —
   the tool stays dependency-free — with the same escaping rules as
   Finding.to_json. Output is deterministic: findings arrive sorted and
   the rule table is emitted in catalog order. *)

let esc = Finding.json_escape

let rule_json (name, desc, hint) =
  let help =
    match hint with
    | None -> ""
    | Some h ->
        Printf.sprintf ",\"help\":{\"text\":\"%s\"}" (esc h)
  in
  Printf.sprintf
    "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"}%s}" (esc name)
    (esc desc) help

let result_json (f : Finding.t) =
  (* SARIF columns/lines are 1-based; Finding cols are 0-based. *)
  Printf.sprintf
    "{\"ruleId\":\"%s\",\"level\":\"error\",\"message\":{\"text\":\"%s\"},\
     \"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\
     \"region\":{\"startLine\":%d,\"startColumn\":%d}}}],\
     \"properties\":{\"tier\":\"%s\"%s}}"
    (esc f.Finding.rule) (esc f.Finding.message) (esc f.Finding.file)
    f.Finding.line
    (f.Finding.col + 1)
    (Finding.tier_name f.Finding.tier)
    (match f.Finding.hint with
    | None -> ""
    | Some h -> Printf.sprintf ",\"hint\":\"%s\"" (esc h))

let to_string ~rules findings =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "{\"version\":\"2.1.0\",\
     \"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
     \"runs\":[{\"tool\":{\"driver\":{\"name\":\"pllscope-lint\",\
     \"informationUri\":\"https://example.invalid/pllscope\",\"rules\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (rule_json r))
    rules;
  Buffer.add_string buf "]}},\"results\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (result_json f))
    findings;
  Buffer.add_string buf "]}]}";
  Buffer.contents buf

(* The SARIF file is CI scratch output, not a result artifact — a torn
   write only fails the upload step, so a plain channel is fine here. *)
let write ~path ~rules findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~rules findings))
