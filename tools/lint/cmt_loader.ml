(* Discovery and loading of .cmt files for the typed tier.

   Dune's regular build already produces a .cmt per module (it always
   passes -bin-annot), stored next to the object files in the library's
   hidden [.<lib>.objs/byte/] directory. We walk a --cmt-root for every
   [*.cmt] (descending into hidden directories, which the source-file
   walker deliberately skips) and index them by the source path recorded
   in the cmt, so each requested .ml file can be paired with its typed
   tree.

   Environment reconstruction: cmt files store typing environments in
   summary form; [Envaux.env_of_only_summary] rebuilds them, which needs
   the compile-time load path ([cmt_loadpath]). Those entries are
   relative to the build root the compiler ran in — when the linter runs
   from a subdirectory (the fixture tests do), --path-root re-anchors
   any entry that does not resolve as written. Reconstruction failures
   are not fatal: rules degrade to the unexpanded types stored in the
   tree, which still resolve the common (non-alias) cases. *)

type loaded = {
  cmt_path : string;
  source : string;  (* path as recorded at compile time *)
  structure : Typedtree.structure;
}

let rec walk_cmts acc path =
  if not (Sys.file_exists path) then acc
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry -> walk_cmts acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* Re-anchor a compile-time load-path entry against where we run from. *)
let fix_path ~path_root d =
  if d = "" || Filename.is_relative d = false || Sys.file_exists d then d
  else
    let cand = Filename.concat path_root d in
    if Sys.file_exists cand then cand else d

let load ~path_root cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception _ -> None
  | cmt -> (
      match (cmt.Cmt_format.cmt_sourcefile, cmt.Cmt_format.cmt_annots) with
      | Some source, Cmt_format.Implementation structure ->
          let loadpath =
            List.map (fix_path ~path_root) cmt.Cmt_format.cmt_loadpath
          in
          Load_path.init ~auto_include:Load_path.no_auto_include loadpath;
          Envaux.reset_cache ();
          Some { cmt_path; source; structure }
      | _ -> None)

(* Pair each requested source file with its cmt. The cmt records the
   path relative to the compiler's build root; the caller may have named
   the same file from a subdirectory, so fall back to suffix matching
   (unambiguous in practice: one cmt per module per tree). *)
let index ~cmt_root =
  let cmts = walk_cmts [] cmt_root in
  List.filter_map
    (fun p ->
      match Cmt_format.read_cmt p with
      | exception _ -> None
      | cmt -> (
          match cmt.Cmt_format.cmt_sourcefile with
          | Some src when Filename.check_suffix src ".ml" -> Some (src, p)
          | _ -> None))
    cmts

let find_cmt index file =
  match List.assoc_opt file index with
  | Some p -> Some p
  | None ->
      let suffix = "/" ^ file in
      let matches =
        List.filter
          (fun (src, _) ->
            Filename.check_suffix src suffix
            || Filename.check_suffix file ("/" ^ src))
          index
      in
      (match matches with [ (_, p) ] -> Some p | _ -> None)

(* Reconstruct a full typing env from the summary stored in the tree;
   on failure fall back to the stored env (types already expanded at
   compile time still work, aliases may not). *)
let env_of env = try Envaux.env_of_only_summary env with _ -> env
