(* The typed tier of pllscope-lint: rules over the Typedtree loaded
   from dune-built .cmt files (see Cmt_loader). Where the untyped tier
   (Rules) pattern-matches on name shapes, these rules see resolved
   paths and inferred types, so they catch what the heuristics provably
   miss: a float compare through a variable or alias, an allocation
   inside a kernel, a lane-owned plan leaking out of its sweep task.

   Rules:
   - float-eq      polymorphic =/<>/compare whose operand type is (or
                   contains) float or Complex.t, by actual type
   - hot-alloc     heap-allocating constructs inside [@lint.hot]
                   functions and the designated kernel hot set
   - lane-escape   Parallel.Sweep.grid_local lane state stored, returned
                   or captured by an escaping closure
   - oracle-only   dense-oracle / unchecked-kernel entry points called
                   outside oracle, fallback, experiment or test code
   - ignored-result a result from a *_checked API dropped via ignore,
                   a wildcard binding or unit sequencing

   Suppression shares the untyped grammar: [@lint.allow "rule"] on an
   expression or binding, [@@@lint.allow "rule"] for the file (in the
   .ml or its companion .mli). Attributes survive into the typedtree,
   so no source correlation is needed.

   Like the untyped tier, every rule under-approximates: cold paths
   (raise arguments, exception handlers, assertions) are exempt from
   hot-alloc, and escape analysis flags only directly visible leaks. *)

open Typedtree

let rule_float_eq = "float-eq" (* shared name: typed tier supersedes *)
let rule_hot_alloc = "hot-alloc"
let rule_lane_escape = "lane-escape"
let rule_oracle_only = "oracle-only"
let rule_ignored_result = "ignored-result"

let all_rules =
  [
    ( rule_float_eq,
      "typed: polymorphic =, <> or compare whose operands are (or \
       contain) float/Complex.t" );
    ( rule_hot_alloc,
      "heap allocation inside [@lint.hot] functions and the designated \
       kernel hot set" );
    ( rule_lane_escape,
      "Sweep.grid_local lane state stored, returned or captured by an \
       escaping closure" );
    ( rule_oracle_only,
      "dense-oracle / unchecked kernel entry points called outside \
       oracle, fallback, experiment or test modules" );
    ( rule_ignored_result,
      "result of a *_checked API dropped via ignore, '_' binding or \
       sequencing" );
  ]

type ctx = {
  file : string; (* path as given on the command line *)
  basename : string;
  mutable stack : string list list;
  mutable file_allowed : string list;
  mutable module_path : string list; (* innermost first *)
  mutable findings : Finding.t list;
}

let make_ctx ~file ~extra_allowed =
  {
    file;
    basename = Filename.basename file;
    stack = [];
    file_allowed = extra_allowed;
    module_path = [];
    findings = [];
  }

let suppressed ctx rule =
  let covers rules = List.mem rule rules || List.mem "all" rules in
  covers ctx.file_allowed || List.exists covers ctx.stack

let report ctx rule loc message =
  if not (suppressed ctx rule) then
    ctx.findings <-
      Finding.with_tier Finding.Typed
        (Finding.of_loc ~file:ctx.file ~rule ~message loc)
      :: ctx.findings

(* ------------------------------------------------------------------ *)
(* paths and types                                                     *)

let rec path_last = function
  | Path.Pident id -> Ident.name id
  | Path.Pdot (_, s) -> s
  | Path.Papply (_, p) -> path_last p
  | Path.Pextra_ty (p, _) -> path_last p

(* Dune wraps libraries: a cross-library reference resolves to the
   mangled implementation module (Htm_core__Htm). Strip the wrapper so
   rule tables can name modules the way source does. *)
let unmangle name =
  let n = String.length name in
  let rec last_sep i best =
    if i >= n - 1 then best
    else if name.[i] = '_' && name.[i + 1] = '_' then last_sep (i + 2) (i + 2)
    else last_sep (i + 1) best
  in
  match last_sep 0 0 with 0 -> name | i -> String.sub name i (n - i)

let path_prefix = function
  | Path.Pdot (p, _) -> Some (unmangle (path_last p))
  | _ -> None

let head_ident e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

let is_stdlib_path p names =
  match (path_prefix p, path_last p) with
  | (Some "Stdlib" | None), last -> List.mem last names
  | _ -> false

let expand env ty = try Ctype.expand_head env ty with _ -> ty

let is_complex_path p =
  let n = Path.name p in
  String.equal n "Stdlib__Complex.t"
  || String.equal n "Complex.t"
  ||
  match (path_prefix p, path_last p) with
  | Some ("Cx" | "Complex"), "t" -> true
  | _ -> false

(* What a polymorphic comparison on [ty] would walk over. Expansion is
   depth- and cycle-bounded; declarations are inspected one level at a
   time (record fields, constructor arguments), which resolves the
   aliases and wrappers that actually occur in this tree. *)
type float_kind = Kfloat | Kcomplex | Kcontains | Kclean

let classify_type env ty =
  let rec go depth seen ty =
    if depth < 0 then Kclean
    else
      let ty = expand env ty in
      match Types.get_desc ty with
      | Types.Tconstr (p, args, _) ->
          if Path.same p Predef.path_float then Kfloat
          else if is_complex_path p then Kcomplex
          else if
            List.exists (Path.same p)
              [ Predef.path_array; Predef.path_list; Predef.path_option ]
          then contains depth seen args
          else if List.exists (Path.same p) seen then Kclean
          else
            let seen = p :: seen in
            let from_decl =
              match Env.find_type p env with
              | exception Not_found -> Kclean
              | decl -> (
                  match decl.Types.type_kind with
                  | Types.Type_record (lbls, _) ->
                      contains (depth - 1) seen
                        (List.map (fun l -> l.Types.ld_type) lbls)
                  | Types.Type_variant (cstrs, _) ->
                      contains (depth - 1) seen
                        (List.concat_map
                           (fun c ->
                             match c.Types.cd_args with
                             | Types.Cstr_tuple tys -> tys
                             | Types.Cstr_record lbls ->
                                 List.map (fun l -> l.Types.ld_type) lbls)
                           cstrs)
                  | _ -> Kclean)
            in
            if from_decl <> Kclean then downgrade from_decl
            else downgrade (contains (depth - 1) seen args)
      | Types.Ttuple tys -> downgrade (contains (depth - 1) seen tys)
      | _ -> Kclean
  and contains depth seen tys =
    List.fold_left
      (fun acc ty -> if acc <> Kclean then acc else go depth seen ty)
      Kclean tys
  and downgrade = function
    | Kclean -> Kclean
    | _ -> Kcontains (* float found below the surface *)
  in
  go 3 [] ty

(* ------------------------------------------------------------------ *)
(* float-eq (typed)                                                    *)

let check_float_eq ctx e =
  match e.exp_desc with
  | Texp_apply (head, [ (_, Some a); (_, Some b) ]) -> (
      match head_ident head with
      | Some p
        when (match (path_prefix p, path_last p) with
             | Some "Stdlib", ("=" | "<>" | "compare") -> true
             | _ -> false) -> (
          let env = Cmt_loader.env_of a.exp_env in
          let op = path_last p in
          let kind =
            match classify_type env a.exp_type with
            | Kclean -> classify_type env b.exp_type
            | k -> k
          in
          match kind with
          | Kfloat ->
              report ctx rule_float_eq e.exp_loc
                (Printf.sprintf
                   "polymorphic %s on float operands (resolved type) is \
                    NaN-unsafe; use Float.equal/Float.compare"
                   op)
          | Kcomplex ->
              report ctx rule_float_eq e.exp_loc
                (Printf.sprintf
                   "polymorphic %s on Complex.t operands (resolved type) is \
                    NaN-unsafe; use Cx.is_zero/Cx.approx or compare re/im \
                    with Float.compare"
                   op)
          | Kcontains ->
              report ctx rule_float_eq e.exp_loc
                (Printf.sprintf
                   "polymorphic %s on a type containing float components is \
                    NaN-unsafe; compare with a type-specific equal"
                   op)
          | Kclean -> ())
      | _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* hot-alloc                                                           *)

(* The designated hot set: (file basename, module-qualified binding).
   These are the kernels whose allocation-freedom the benchmarks in
   BENCH_kernels/BENCH_grid depend on; [@lint.hot] extends the set to
   their internals and to new kernels. *)
let builtin_hot =
  [
    ( "plan.ml",
      [ "eval"; "element"; "baseband"; "run_grid"; "run_grid_map";
        "run_grid_ba" ] );
    ("smat.ml", [ "Into.scale"; "Into.add"; "Into.mul"; "Into.feedback" ]);
    ( "cmatf.ml",
      [ "gemm"; "gemv"; "gemv_herm"; "axpy"; "scale_inplace"; "add_ident";
        "lu_decompose_inplace"; "lu_solve_inplace" ] );
    ("rat.ml", [ "eval_into" ]);
  ]

let nonalloc_list_fns =
  [ "length"; "hd"; "tl"; "nth"; "iter"; "iteri"; "for_all"; "exists";
    "for_all2"; "exists2"; "mem"; "memq"; "assoc"; "assq"; "mem_assoc";
    "mem_assq"; "is_empty"; "compare_lengths"; "compare_length_with" ]

let alloc_array_fns =
  [ "make"; "create_float"; "init"; "make_matrix"; "init_matrix"; "append";
    "concat"; "sub"; "copy"; "of_list"; "to_list"; "of_seq"; "to_seq";
    "to_seqi"; "map"; "mapi"; "split"; "combine"; "stable_sort" ]

let alloc_string_fns =
  [ "make"; "init"; "sub"; "concat"; "cat"; "map"; "mapi"; "trim"; "escaped";
    "uppercase_ascii"; "lowercase_ascii"; "capitalize_ascii";
    "uncapitalize_ascii"; "split_on_char"; "to_bytes"; "of_bytes"; "to_seq";
    "of_seq" ]

let alloc_bytes_fns =
  [ "make"; "create"; "init"; "copy"; "of_string"; "to_string"; "sub";
    "extend"; "concat"; "cat" ]

let alloc_hashtbl_fns =
  [ "create"; "copy"; "add"; "replace"; "of_seq"; "to_seq"; "fold" ]

(* Head paths whose application always allocates. *)
let allocating_call p =
  let last = path_last p in
  match path_prefix p with
  | Some "Array" when List.mem last alloc_array_fns -> Some ("Array." ^ last)
  | Some "Float" when String.equal last "of_string" -> Some "Float.of_string"
  | Some "List" when not (List.mem last nonalloc_list_fns) ->
      Some ("List." ^ last)
  | Some "String" when List.mem last alloc_string_fns -> Some ("String." ^ last)
  | Some "Bytes" when List.mem last alloc_bytes_fns -> Some ("Bytes." ^ last)
  | Some "Hashtbl" when List.mem last alloc_hashtbl_fns ->
      Some ("Hashtbl." ^ last)
  | Some ("Printf" | "Format" | "Buffer" | "Seq" | "Queue" | "Stack") ->
      Some (Path.name p)
  | Some "Stdlib" | None ->
      if
        List.mem last
          [ "ref"; "^"; "@"; "string_of_int"; "string_of_float";
            "string_of_bool"; "float_of_string" ]
      then Some last
      else None
  | _ -> None

let is_raise_head p =
  is_stdlib_path p [ "raise"; "raise_notrace"; "invalid_arg"; "failwith" ]

(* Tail positions of an expression: what the enclosing function returns. *)
let rec tails e =
  match e.exp_desc with
  | Texp_let (_, _, b) -> tails b
  | Texp_sequence (_, b) -> tails b
  | Texp_ifthenelse (_, t, Some el) -> tails t @ tails el
  | Texp_ifthenelse (_, t, None) -> tails t
  | Texp_match (_, cases, _) -> List.concat_map (fun c -> tails c.c_rhs) cases
  | Texp_try (b, cases) ->
      tails b @ List.concat_map (fun c -> tails c.c_rhs) cases
  | Texp_open (_, b) -> tails b
  | Texp_letmodule (_, _, _, _, b) -> tails b
  | _ -> [ e ]

(* A let-bound ref whose every use is a direct !, :=, incr or decr is
   rewritten by the compiler into a mutable stack variable
   (Simplif.eliminate_ref) and never touches the heap. *)
let ref_init e =
  match e.exp_desc with
  | Texp_apply (head, [ (_, Some init) ])
    when (match head_ident head with
         | Some p -> is_stdlib_path p [ "ref" ]
         | None -> false) ->
      Some init
  | _ -> None

let only_ref_ops id body =
  let safe = ref true in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.exp_desc with
          | Texp_apply
              ( head,
                (_, Some { exp_desc = Texp_ident (Path.Pident i, _, _); _ })
                :: rest )
            when Ident.same i id
                 && (match head_ident head with
                    | Some p -> is_stdlib_path p [ "!"; ":="; "incr"; "decr" ]
                    | None -> false) ->
              List.iter
                (function _, Some a -> self.expr self a | _ -> ())
                rest
          | Texp_ident (Path.Pident i, _, _) when Ident.same i id ->
              safe := false
          | _ -> Tast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it body;
  !safe

(* Scan one hot function body for allocating constructs. Exemptions,
   each matching what the compiler or the API contract actually does:
   - cold subtrees never run per point: raise/invalid_arg/failwith
     arguments, assertion bodies, exception handlers, and Error
     construction (the checked protocol's failure path);
   - a literal tuple scrutinee of a match is compiled as a multi-column
     match without building the tuple;
   - let-bound refs used only through !/:=/incr/decr become mutable
     stack variables (Simplif.eliminate_ref);
   - Ok of a result-typed call is the checked protocol's O(1)-per-call
     return, not per-point churn (its payload is still scanned);
   - allocation in tail position is the function's documented return
     value — hot-alloc polices the work done per point, not whether
     the API hands back a fresh result. *)
let scan_hot ctx ~fname body =
  let alloc loc what =
    report ctx rule_hot_alloc loc
      (Printf.sprintf "%s in hot function '%s' (kernel paths must not touch \
                       the heap per point)"
         what fname)
  in
  (* skip the function's own curried parameter chain, including the
     default-value lets the compiler inserts for ?(x = e) parameters *)
  let rec skip_params e =
    match e.exp_desc with
    | Texp_function { cases = [ { c_rhs; _ } ]; _ } -> skip_params c_rhs
    | Texp_let
        ( _,
          [ { vb_expr = { exp_desc = Texp_match (scrut, _, _); _ }; _ } ],
          b )
      when (match scrut.exp_desc with
           | Texp_ident (p, _, _) ->
               let n = path_last p in
               String.length n >= 5 && String.sub n 0 5 = "*opt*"
           | _ -> false) ->
        skip_params b
    | _ -> e
  in
  let body = skip_params body in
  let tail_set = tails body in
  let in_tail e = List.memq e tail_set in
  let is_result_construct e =
    match Types.get_desc (expand (Cmt_loader.env_of e.exp_env) e.exp_type) with
    | Types.Tconstr (p, _, _) ->
        String.equal (Path.name p) "result"
        || String.equal (Path.name p) "Stdlib.result"
    | _ -> false
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          let pushed = Rules.allow_rules_of_attrs e.exp_attributes in
          ctx.stack <- pushed :: ctx.stack;
          (let continue () = Tast_iterator.default_iterator.expr self e in
           let flag what = if not (in_tail e) then alloc e.exp_loc what in
           match e.exp_desc with
           (* cold subtrees: skip entirely *)
           | Texp_apply (head, _)
             when (match head_ident head with
                  | Some p -> is_raise_head p
                  | None -> false) ->
               ()
           | Texp_assert _ -> ()
           | Texp_try (b, _) -> self.expr self b (* handlers are cold *)
           | Texp_construct (_, cd, _) when cd.Types.cstr_name = "Error" ->
               () (* failure path of the checked protocol: cold *)
           | Texp_construct (_, cd, args)
             when cd.Types.cstr_name = "Ok" && is_result_construct e ->
               (* the checked protocol's per-call return; payload still
                  scanned *)
               List.iter (self.expr self) args
           (* a literal tuple scrutinee never allocates *)
           | Texp_match ({ exp_desc = Texp_tuple es; _ }, cases, _) ->
               List.iter (self.expr self) es;
               List.iter (fun c -> self.expr self c.c_rhs) cases
           (* eliminate_ref: a ref that stays a local mutable variable.
              Binding-level [@lint.allow] scopes over the bound
              expression, matching the untyped tier. *)
           | Texp_let (Asttypes.Nonrecursive, vbs, b) ->
               List.iter
                 (fun vb ->
                   let vb_pushed =
                     Rules.allow_rules_of_attrs vb.vb_attributes
                   in
                   ctx.stack <- vb_pushed :: ctx.stack;
                   (match (vb.vb_pat.pat_desc, ref_init vb.vb_expr) with
                   | Tpat_var (id, _), Some init when only_ref_ops id b ->
                       self.expr self init
                   | _ -> self.expr self vb.vb_expr);
                   ctx.stack <- List.tl ctx.stack)
                 vbs;
               self.expr self b
           (* allocating constructs *)
           | Texp_function _ ->
               flag "closure allocation";
               (* one closure per curried chain, not one per parameter *)
               self.expr self (skip_params e)
           | Texp_tuple _ ->
               flag "tuple allocation";
               continue ()
           | Texp_construct (_, cd, _ :: _) ->
               flag
                 (Printf.sprintf "constructor '%s' allocation"
                    cd.Types.cstr_name);
               continue ()
           | Texp_variant (_, Some _) ->
               flag "polymorphic-variant allocation";
               continue ()
           | Texp_record _ ->
               flag "record allocation";
               continue ()
           | Texp_array (_ :: _) ->
               flag "array literal allocation";
               continue ()
           | Texp_lazy _ ->
               flag "lazy-block allocation";
               continue ()
           | Texp_letop _ ->
               flag "binding-operator closure allocation";
               continue ()
           | Texp_object _ | Texp_new _ | Texp_pack _ ->
               flag "object/module allocation";
               continue ()
           | Texp_apply (head, _) ->
               (match head_ident head with
               | Some p -> (
                   match allocating_call p with
                   | Some name -> flag (name ^ " allocates")
                   | None -> ())
               | None -> ());
               (* partial application materializes a closure *)
               let env = Cmt_loader.env_of e.exp_env in
               (match Types.get_desc (expand env e.exp_type) with
               | Types.Tarrow _ ->
                   flag "partial application (closure allocation)"
               | Types.Tconstr (p, _, _) when is_complex_path p ->
                   flag "boxed Complex.t result allocation"
               | _ -> ());
               continue ()
           | _ -> continue ());
          ctx.stack <- List.tl ctx.stack);
    }
  in
  it.expr it body

(* ------------------------------------------------------------------ *)
(* lane-escape                                                         *)

let rec pat_idents : type k. k general_pattern -> Ident.t list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (inner, id, _) -> id :: pat_idents inner
  | Tpat_tuple ps | Tpat_array ps -> List.concat_map pat_idents ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pat_idents ps
  | Tpat_variant (_, Some inner, _) -> pat_idents inner
  | Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, p) -> pat_idents p) fields
  | Tpat_lazy inner -> pat_idents inner
  | Tpat_or (a, b, _) -> pat_idents a @ pat_idents b
  | Tpat_value v -> pat_idents (v :> value general_pattern)
  | Tpat_exception inner -> pat_idents inner
  | _ -> []

let mentions_ident ids e =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _)
            when List.exists (Ident.same id) ids ->
              found := true
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !found

(* Does the lane ident appear *as a value* in this expression — the
   expression is the ident itself, or a tuple/constructor/record/array
   immediately packaging it? (An application that merely reads the lane
   state is fine: its result is fresh data.) *)
let rec packages_ident ids e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> List.exists (Ident.same id) ids
  | Texp_tuple es | Texp_array es | Texp_construct (_, _, es) ->
      List.exists (packages_ident ids) es
  | Texp_variant (_, Some inner) -> packages_ident ids inner
  | Texp_record { fields; extended_expression; _ } ->
      Array.exists
        (function
          | _, Overridden (_, e) -> packages_ident ids e
          | _, Kept _ -> false)
        fields
      || (match extended_expression with
         | Some e -> packages_ident ids e
         | None -> false)
  | _ -> false

let is_grid_local_head ctx p =
  String.equal (path_last p) "grid_local"
  && (match path_prefix p with
     | Some "Sweep" -> true
     | _ -> String.equal ctx.basename "sweep.ml")

let scan_lane ctx callback =
  match callback.exp_desc with
  | Texp_function { cases = [ { c_lhs; c_rhs; _ } ]; _ } ->
      let lane = pat_idents c_lhs in
      if lane = [] then ()
      else begin
        let leak loc what =
          report ctx rule_lane_escape loc
            (Printf.sprintf
               "%s: lane state from Sweep.grid_local is owned by one task at \
                a time and must not outlive it"
               what)
        in
        (* the point parameter's function node is the legit curried
           continuation, everything nested deeper is scanned *)
        let body =
          match c_rhs.exp_desc with
          | Texp_function { cases = [ { c_rhs = inner; _ } ]; _ } -> inner
          | _ -> c_rhs
        in
        (* stored through a mutable cell? *)
        let it =
          {
            Tast_iterator.default_iterator with
            expr =
              (fun self e ->
                let pushed = Rules.allow_rules_of_attrs e.exp_attributes in
                ctx.stack <- pushed :: ctx.stack;
                (match e.exp_desc with
                | Texp_apply (head, args) -> (
                    match head_ident head with
                    | Some p when is_stdlib_path p [ "ref" ] -> (
                        match args with
                        | [ (_, Some v) ] when mentions_ident lane v ->
                            leak e.exp_loc "lane state stored in a ref"
                        | _ -> ())
                    | Some p when is_stdlib_path p [ ":=" ] -> (
                        match args with
                        | [ _; (_, Some v) ] when mentions_ident lane v ->
                            leak e.exp_loc
                              "lane state assigned to a captured ref"
                        | _ -> ())
                    | Some p
                      when (match (path_prefix p, path_last p) with
                           | Some ("Array" | "Hashtbl"), ("set" | "add" | "replace")
                             -> true
                           | _ -> false) -> (
                        match List.rev args with
                        | (_, Some v) :: _ when mentions_ident lane v ->
                            leak e.exp_loc
                              (Printf.sprintf
                                 "lane state stored via %s" (Path.name p))
                        | _ -> ())
                    | _ -> ())
                | Texp_setfield (_, _, _, v) when mentions_ident lane v ->
                    leak e.exp_loc "lane state stored in a mutable field"
                | _ -> ());
                Tast_iterator.default_iterator.expr self e;
                ctx.stack <- List.tl ctx.stack);
          }
        in
        it.expr it body;
        (* returned from the task, or captured by a returned closure? *)
        List.iter
          (fun t ->
            if packages_ident lane t then
              leak t.exp_loc "lane state returned from the task"
            else
              match t.exp_desc with
              | Texp_function _ when mentions_ident lane t ->
                  leak t.exp_loc
                    "closure capturing lane state returned from the task"
              | _ -> ())
          (tails body)
      end
  | _ -> ()

let check_lane_escape ctx e =
  match e.exp_desc with
  | Texp_apply (head, args) -> (
      match head_ident head with
      | Some p when is_grid_local_head ctx p ->
          List.iter
            (fun (label, arg) ->
              match (label, arg) with
              | Asttypes.Nolabel, Some ({ exp_desc = Texp_function _; _ } as f)
                ->
                  scan_lane ctx f
              | _ -> ())
            args
      | _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* oracle-only                                                         *)

(* (module, function) -> basenames of the modules that define or are
   the sanctioned consumers of the entry point. *)
let oracle_apis =
  [
    (("Htm", "to_matrix_dense"), [ "htm.ml"; "htm_expr.ml" ]);
    (("Htm_expr", "to_matrix_dense"), [ "htm.ml"; "htm_expr.ml" ]);
    (* smat.ml is the sanctioned wrapper: it exposes the raw LU pair
       only behind Into.feedback ~checked *)
    (("Cmatf", "lu_decompose_inplace"), [ "cmatf.ml"; "smat.ml" ]);
    (("Cmatf", "lu_solve_inplace"), [ "cmatf.ml"; "smat.ml" ]);
    (("Smat", "feedback"), [ "smat.ml" ]);
  ]

let oracle_caller_exempt basename =
  (* oracle, fallback, cross-check and measurement modules may use the
     dense/unchecked paths; the typed tier only scans lib/, so tests and
     bench are exempt by scope. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0
  in
  contains basename "oracle" || contains basename "fallback"
  || contains basename "xchk"
  || String.length basename > 4
     && String.equal (String.sub basename 0 4) "exp_"

let check_oracle_only ctx e =
  match e.exp_desc with
  | Texp_apply (head, _) -> (
      match head_ident head with
      | Some p -> (
          match (path_prefix p, path_last p) with
          | Some m, f -> (
              match List.assoc_opt (m, f) oracle_apis with
              | Some definers
                when not
                       (List.mem ctx.basename definers
                       || oracle_caller_exempt ctx.basename) ->
                  report ctx rule_oracle_only e.exp_loc
                    (Printf.sprintf
                       "%s.%s is an oracle/unchecked entry point; call the \
                        checked variant here, or move this use into an \
                        oracle/fallback/test module"
                       m f)
              | _ -> ())
          | _ -> ())
      | None -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* ignored-result                                                      *)

let is_result_ty env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tconstr (p, _, _) ->
      String.equal (Path.name p) "result"
      || String.equal (Path.name p) "Stdlib.result"
  | _ -> false

let checked_result_call e =
  match e.exp_desc with
  | Texp_apply (head, _) -> (
      match head_ident head with
      | Some p ->
          let last = path_last p in
          let n = String.length last in
          if n > 8 && String.equal (String.sub last (n - 8) 8) "_checked" then
            if is_result_ty (Cmt_loader.env_of e.exp_env) e.exp_type then
              Some (Path.name p)
            else None
          else None
      | None -> None)
  | _ -> None

(* The allow may sit on the checked call itself, which has not been
   visited yet when the enclosing ignore/sequence is checked — scope its
   own attributes in before reporting. *)
let report_ignored ctx call api how =
  let pushed = Rules.allow_rules_of_attrs call.exp_attributes in
  ctx.stack <- pushed :: ctx.stack;
  report ctx rule_ignored_result call.exp_loc
    (Printf.sprintf
       "result of %s is dropped %s; a checked API's Error carries the \
        degradation the caller must decide about — match on it or propagate"
       api how);
  ctx.stack <- List.tl ctx.stack

let check_ignored_result ctx e =
  match e.exp_desc with
  | Texp_apply (head, [ (_, Some arg) ])
    when (match head_ident head with
         | Some p -> is_stdlib_path p [ "ignore" ]
         | None -> false) -> (
      match checked_result_call arg with
      | Some api -> report_ignored ctx arg api "via ignore"
      | None -> ())
  | Texp_sequence (e1, _) -> (
      match checked_result_call e1 with
      | Some api -> report_ignored ctx e1 api "by unit sequencing"
      | None -> ())
  | _ -> ()

let check_ignored_binding ctx vb =
  let discarded =
    match vb.vb_pat.pat_desc with
    | Tpat_any -> true
    | Tpat_var (id, _) ->
        let n = Ident.name id in
        String.length n > 0 && n.[0] = '_'
    | _ -> false
  in
  if discarded then
    match checked_result_call vb.vb_expr with
    | Some api -> report_ignored ctx vb.vb_expr api "by a wildcard binding"
    | None -> ()

(* ------------------------------------------------------------------ *)
(* driver over one typed structure                                     *)

let hot_attr attrs =
  List.exists
    (fun (a : Parsetree.attribute) ->
      String.equal a.attr_name.txt "lint.hot")
    attrs

let binding_name vb =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) -> Some (Ident.name id)
  | _ -> None

let qualified ctx name =
  String.concat "." (List.rev (name :: ctx.module_path))

let in_builtin_hot ctx name =
  match List.assoc_opt ctx.basename builtin_hot with
  | Some names -> List.mem (qualified ctx name) names
  | None -> false

let lint_structure ctx structure =
  (* file-level [@@@lint.allow] attributes cover the whole file *)
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_attribute a ->
          ctx.file_allowed <-
            Rules.allow_rules_of_attrs [ a ] @ ctx.file_allowed
      | _ -> ())
    structure.str_items;
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          let pushed = Rules.allow_rules_of_attrs e.exp_attributes in
          ctx.stack <- pushed :: ctx.stack;
          check_float_eq ctx e;
          check_lane_escape ctx e;
          check_oracle_only ctx e;
          check_ignored_result ctx e;
          Tast_iterator.default_iterator.expr self e;
          ctx.stack <- List.tl ctx.stack);
      value_binding =
        (fun self vb ->
          let pushed = Rules.allow_rules_of_attrs vb.vb_attributes in
          ctx.stack <- pushed :: ctx.stack;
          check_ignored_binding ctx vb;
          (match binding_name vb with
          | Some name when hot_attr vb.vb_attributes || in_builtin_hot ctx name
            ->
              scan_hot ctx ~fname:(qualified ctx name) vb.vb_expr
          | _ -> ());
          Tast_iterator.default_iterator.value_binding self vb;
          ctx.stack <- List.tl ctx.stack);
      structure_item =
        (fun self item ->
          match item.str_desc with
          | Tstr_module mb ->
              let name =
                match mb.mb_id with Some id -> Ident.name id | None -> "_"
              in
              ctx.module_path <- name :: ctx.module_path;
              Tast_iterator.default_iterator.structure_item self item;
              ctx.module_path <- List.tl ctx.module_path
          | _ -> Tast_iterator.default_iterator.structure_item self item);
    }
  in
  it.structure it structure;
  List.rev ctx.findings
