(* The pllscope lint rules, implemented as checks over the untyped
   parsetree (compiler-libs [Parse] + [Ast_iterator]).

   Working untyped keeps the tool dependency-free and fast, at the cost
   of syntactic heuristics: float-eq fires only when an operand is
   visibly float-shaped (float literal, [*.]-family operator, a known
   float-returning function), and pool-purity treats any name not bound
   inside the closure as captured. Both under-approximate rather than
   spam: a silent miss is recoverable by review, a noisy gate gets
   turned off.

   Suppression: [[@lint.allow "rule"]] on an expression or value
   binding, or a file-level [[@@@lint.allow "rule"]] floating attribute.
   Several rules may be given, separated by spaces or commas; the
   special name "all" suppresses every rule. *)

open Parsetree

let rule_float_eq = "float-eq"
let rule_pool_purity = "pool-purity"
let rule_nondet = "nondeterminism"
let rule_mli = "mli-coverage"
let rule_prefix = "error-message-prefix"
let rule_catch_all = "catch-all"
let rule_raw_write = "raw-result-write"

let all_rules =
  [
    ( rule_float_eq,
      "polymorphic =, <> or compare on float- or Cx.t-shaped operands \
       (NaN-unsafe)" );
    ( rule_pool_purity,
      "mutable state captured by closures passed to Parallel.Pool/Sweep" );
    ( rule_nondet,
      "wall-clock / self-seeded randomness / Hashtbl.hash under lib/" );
    (rule_mli, "every lib/**/*.ml must have a matching .mli");
    ( rule_prefix,
      "invalid_arg/failwith messages must start with 'Module.function: '" );
    ( rule_catch_all,
      "exception handlers under lib/ that silently swallow every exception" );
    ( rule_raw_write,
      "direct open_out/Out_channel writes to *.json or golden artifacts; \
       route them through Runner.Atomic_file" );
    ( "bad-allow",
      "[@lint.allow] attribute naming a rule that does not exist" );
  ]

let rule_bad_allow = "bad-allow"

type ctx = {
  file : string;
  in_lib : bool;
  valid_rules : string list; (* catalog for [@lint.allow] validation *)
  mutable stack : string list list; (* [@lint.allow] scopes, innermost first *)
  mutable file_allowed : string list; (* [@@@lint.allow] for the whole file *)
  mutable findings : Finding.t list;
}

let make_ctx ?(extra_allowed = []) ?(valid_rules = []) ~file ~in_lib () =
  { file; in_lib; valid_rules; stack = []; file_allowed = extra_allowed;
    findings = [] }

let suppressed ctx rule =
  let covers rules = List.mem rule rules || List.mem "all" rules in
  covers ctx.file_allowed || List.exists covers ctx.stack

let report ctx rule loc message =
  if not (suppressed ctx rule) then
    ctx.findings <-
      Finding.of_loc ~file:ctx.file ~rule ~message loc :: ctx.findings

(* ------------------------------------------------------------------ *)
(* [@lint.allow "..."] parsing                                         *)

let allow_rules_of_attrs attrs =
  List.concat_map
    (fun (a : attribute) ->
      if not (String.equal a.attr_name.txt "lint.allow") then []
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( {
                        pexp_desc = Pexp_constant (Pconst_string (s, _, _));
                        _;
                      },
                      _ );
                _;
              };
            ] ->
            String.split_on_char ' ' s
            |> List.concat_map (String.split_on_char ',')
            |> List.filter (fun r -> not (String.equal r ""))
        | _ -> [ "all" ] (* a bare [@lint.allow] suppresses everything *))
    attrs

(* A suppression naming a rule that does not exist silences nothing and
   reads as if it did — flag it (untyped tier only, so the check runs
   exactly once per file). The catalog is injected by the driver so this
   module needs no knowledge of the typed tier's rules. *)
let validate_allow ctx (attrs : attributes) =
  if ctx.valid_rules <> [] then
    List.iter
      (fun (a : attribute) ->
        if String.equal a.attr_name.txt "lint.allow" then
          List.iter
            (fun r ->
              if not (String.equal r "all" || List.mem r ctx.valid_rules) then
                report ctx rule_bad_allow a.attr_loc
                  (Printf.sprintf
                     "[@lint.allow %S] names no known rule and suppresses \
                      nothing; see --list-rules"
                     r))
            (allow_rules_of_attrs [ a ]))
      attrs

(* ------------------------------------------------------------------ *)
(* float-eq                                                            *)

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let float_funs =
  [
    "sqrt"; "exp"; "log"; "log10"; "expm1"; "log1p"; "sin"; "cos"; "tan";
    "asin"; "acos"; "atan"; "atan2"; "sinh"; "cosh"; "tanh"; "ceil"; "floor";
    "abs_float"; "mod_float"; "float_of_int"; "float_of_string"; "ldexp";
    "copysign"; "hypot";
  ]

let float_consts =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

(* [Float.f] calls that do NOT return float — everything else does. *)
let float_module_non_float =
  [
    "to_int"; "to_string"; "is_nan"; "is_finite"; "is_integer"; "compare";
    "equal"; "sign_bit"; "classify_float"; "hash"; "seeded_hash"; "to_string_hum";
  ]

(* Float-returning accessors of the repo's own complex module. *)
let cx_float_funs = [ "abs"; "re"; "im"; "norm2"; "arg" ]

(* [Cx.*] values/calls that are NOT [Cx.t]-valued — everything else in
   the module yields a complex number, so [Cx.f ...] operands of a
   polymorphic comparison are Cx-shaped unless listed here. *)
let cx_non_cx_funs =
  cx_float_funs
  @ [ "is_zero"; "is_finite"; "approx"; "to_string"; "pp" ]

let cx_consts = [ "zero"; "one"; "j" ]

let rec cx_shaped e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Cx", n); _ } ->
      List.mem n cx_consts
  | Pexp_apply (f, _) -> (
      match f.pexp_desc with
      | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Cx", fn); _ } ->
          not (List.mem fn cx_non_cx_funs)
      | _ -> false)
  | Pexp_constraint (inner, _) -> cx_shaped inner
  | Pexp_open (_, inner) -> cx_shaped inner
  | _ -> false

let rec float_shaped e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt = Longident.Lident n; _ } -> List.mem n float_consts
  | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Float", n); _ } ->
      List.mem n
        [ "pi"; "infinity"; "neg_infinity"; "nan"; "epsilon"; "max_float";
          "min_float" ]
  | Pexp_apply (f, _) -> (
      match f.pexp_desc with
      | Pexp_ident { txt = Longident.Lident op; _ } ->
          List.mem op float_ops || List.mem op float_funs
      | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Float", fn); _ } ->
          not (List.mem fn float_module_non_float)
      | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Cx", fn); _ } ->
          List.mem fn cx_float_funs
      | _ -> false)
  | Pexp_constraint (inner, _) -> float_shaped inner
  | Pexp_open (_, inner) -> float_shaped inner
  | _ -> false

let check_float_eq ctx e =
  match e.pexp_desc with
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }; _ },
        [ (Nolabel, a); (Nolabel, b) ] )
    when float_shaped a || float_shaped b ->
      report ctx rule_float_eq e.pexp_loc
        (Printf.sprintf
           "polymorphic %s on float operands is NaN-unsafe; use Float.equal \
            (or classify the value)"
           op)
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }; _ },
        [ (Nolabel, a); (Nolabel, b) ] )
    when cx_shaped a || cx_shaped b ->
      report ctx rule_float_eq e.pexp_loc
        (Printf.sprintf
           "polymorphic %s on Cx.t operands is NaN-unsafe; use Cx.is_zero or \
            Cx.approx"
           op)
  | Pexp_apply
      ( {
          pexp_desc =
            Pexp_ident
              {
                txt =
                  ( Longident.Lident "compare"
                  | Longident.Ldot (Longident.Lident "Stdlib", "compare") );
                _;
              };
          _;
        },
        [ (Nolabel, a); (Nolabel, b) ] )
    when float_shaped a || float_shaped b ->
      report ctx rule_float_eq e.pexp_loc
        "polymorphic compare on float operands is NaN-unsafe; use \
         Float.compare"
  | Pexp_apply
      ( {
          pexp_desc =
            Pexp_ident
              {
                txt =
                  ( Longident.Lident "compare"
                  | Longident.Ldot (Longident.Lident "Stdlib", "compare") );
                _;
              };
          _;
        },
        [ (Nolabel, a); (Nolabel, b) ] )
    when cx_shaped a || cx_shaped b ->
      report ctx rule_float_eq e.pexp_loc
        "polymorphic compare on Cx.t operands is NaN-unsafe; compare re/im \
         explicitly with Float.compare"
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* pool-purity                                                         *)

let pool_fns =
  [ "map"; "mapi"; "init"; "grid"; "grid_local"; "map_list"; "sum";
    "run_indices" ]

let is_pool_entry lid =
  match Longident.flatten lid with
  | [ "Parallel"; ("Pool" | "Sweep"); fn ] | [ ("Pool" | "Sweep"); fn ] ->
      List.mem fn pool_fns
  | _ -> false

(* Mutating (or unsynchronized-read) operations on shared structures. *)
let hashtbl_shared_fns =
  [
    "add"; "replace"; "remove"; "reset"; "clear"; "find"; "find_opt";
    "find_all"; "mem"; "iter"; "fold"; "filter_map_inplace"; "length";
  ]

let buffer_shared_fns =
  [
    "add_char"; "add_string"; "add_bytes"; "add_subbytes"; "add_substring";
    "add_buffer"; "add_channel"; "contents"; "clear"; "reset"; "truncate";
    "length"; "output_buffer";
  ]

(* Every name bound anywhere inside [e] (params, lets, match cases).
   Over-approximates lexical scope — good enough to separate task-local
   state from captured state without a full environment. *)
let bound_names e =
  let names = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
              Hashtbl.replace names txt ()
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.expr it e;
  names

let scan_closure ctx closure =
  let locals = bound_names closure in
  let is_local_ident e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } -> Hashtbl.mem locals n
    | _ -> false
  in
  let ident_name e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } -> n
    | _ -> "<expr>"
  in
  let hazard loc msg = report ctx rule_pool_purity loc msg in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          let pushed = allow_rules_of_attrs e.pexp_attributes in
          ctx.stack <- pushed :: ctx.stack;
          (match e.pexp_desc with
          | Pexp_setfield (obj, fld, _) ->
              if not (is_local_ident obj) then
                hazard e.pexp_loc
                  (Printf.sprintf
                     "write to mutable field '%s' of a value captured by a \
                      pool task races across domains"
                     (Longident.last fld.txt))
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident ":="; _ }; _ },
                (_, lhs) :: _ ) ->
              if not (is_local_ident lhs) then
                hazard e.pexp_loc
                  (Printf.sprintf
                     "assignment to ref '%s' captured by a pool task races \
                      across domains"
                     (ident_name lhs))
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident "!"; _ }; _ },
                [ (_, arg) ] ) ->
              if
                (match arg.pexp_desc with
                | Pexp_ident { txt = Longident.Lident _; _ } -> true
                | _ -> false)
                && not (is_local_ident arg)
              then
                hazard e.pexp_loc
                  (Printf.sprintf
                     "read of ref '%s' captured by a pool task is unsynchronized"
                     (ident_name arg))
          | Pexp_apply
              ( {
                  pexp_desc =
                    Pexp_ident { txt = Longident.Lident (("incr" | "decr") as f); _ };
                  _;
                },
                [ (_, arg) ] ) ->
              if not (is_local_ident arg) then
                hazard e.pexp_loc
                  (Printf.sprintf
                     "%s on ref '%s' captured by a pool task races across \
                      domains"
                     f (ident_name arg))
          | Pexp_apply
              ( {
                  pexp_desc =
                    Pexp_ident
                      { txt = Longident.Ldot (Longident.Lident "Hashtbl", fn); _ };
                  _;
                },
                (_, first) :: _ )
            when List.mem fn hashtbl_shared_fns ->
              if not (is_local_ident first) then
                hazard e.pexp_loc
                  (Printf.sprintf
                     "Hashtbl.%s on a table captured by a pool task is not \
                      thread-safe"
                     fn)
          | Pexp_apply
              ( {
                  pexp_desc =
                    Pexp_ident
                      { txt = Longident.Ldot (Longident.Lident "Buffer", fn); _ };
                  _;
                },
                (_, first) :: _ )
            when List.mem fn buffer_shared_fns ->
              if not (is_local_ident first) then
                hazard e.pexp_loc
                  (Printf.sprintf
                     "Buffer.%s on a buffer captured by a pool task is not \
                      thread-safe"
                     fn)
          | Pexp_apply
              ( {
                  pexp_desc =
                    Pexp_ident
                      {
                        txt =
                          Longident.Ldot
                            (Longident.Lident (("Array" | "Bytes") as m), "set");
                        _;
                      };
                  _;
                },
                (_, first) :: _ ) ->
              if not (is_local_ident first) then
                hazard e.pexp_loc
                  (Printf.sprintf
                     "%s.set on storage captured by a pool task; return \
                      results from the task and let Pool.map collect them"
                     m)
          | _ -> ());
          Ast_iterator.default_iterator.expr self e;
          ctx.stack <- List.tl ctx.stack);
    }
  in
  it.expr it closure

let check_pool_call ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when is_pool_entry txt ->
      List.iter
        (fun (_, arg) ->
          match arg.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> scan_closure ctx arg
          | _ -> ())
        args
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* nondeterminism                                                      *)

let nondet_paths =
  [
    ([ "Random"; "self_init" ],
     "self-seeded randomness breaks run-to-run reproducibility; use the \
      seeded Numeric.Prng");
    ([ "Random"; "State"; "make_self_init" ],
     "self-seeded randomness breaks run-to-run reproducibility; use the \
      seeded Numeric.Prng");
    ([ "Sys"; "time" ],
     "wall/CPU-clock reads make lib/ results nondeterministic; take time \
      as a parameter or annotate why it cannot leak into results");
    ([ "Unix"; "gettimeofday" ],
     "wall-clock reads make lib/ results nondeterministic; take time as a \
      parameter or annotate why it cannot leak into results");
    ([ "Unix"; "time" ],
     "wall-clock reads make lib/ results nondeterministic; take time as a \
      parameter or annotate why it cannot leak into results");
    ([ "Hashtbl"; "hash" ],
     "Hashtbl.hash output is unspecified across OCaml versions; golden \
      snapshots must not depend on it");
    ([ "Hashtbl"; "seeded_hash" ],
     "seeded Hashtbl hashing is unspecified across OCaml versions; golden \
      snapshots must not depend on it");
  ]

let check_nondet ctx e =
  if ctx.in_lib then
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        let path = Longident.flatten txt in
        match List.assoc_opt path nondet_paths with
        | Some why ->
            report ctx rule_nondet e.pexp_loc
              (Printf.sprintf "%s: %s" (String.concat "." path) why)
        | None -> ())
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* error-message-prefix                                                *)

(* Leftmost string literal of an error-message expression: a literal
   itself, the left arm of [lit ^ e], or a sprintf format string. *)
let rec literal_prefix e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident "^"; _ }; _ },
        [ (_, l); _ ] ) ->
      literal_prefix l
  | Pexp_apply
      ( {
          pexp_desc =
            Pexp_ident
              {
                txt =
                  Longident.Ldot
                    (Longident.Lident ("Printf" | "Format"), "sprintf");
                _;
              };
          _;
        },
        (_, fmt) :: _ ) ->
      literal_prefix fmt
  | _ -> None

(* Accepts "Module.function: ..." with one or more dotted capitalized
   components followed by a lowercase function name and a colon. *)
let well_prefixed s =
  let n = String.length s in
  let is_ident c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '\''
  in
  let ident_end i =
    let j = ref (i + 1) in
    while !j < n && is_ident s.[!j] do
      incr j
    done;
    !j
  in
  let rec component i =
    if i >= n then false
    else if s.[i] >= 'A' && s.[i] <= 'Z' then
      let j = ident_end i in
      j < n && s.[j] = '.' && after_dot (j + 1)
    else false
  and after_dot i =
    if i < n && s.[i] >= 'A' && s.[i] <= 'Z' then component i else final i
  and final i =
    if i >= n then false
    else if (s.[i] >= 'a' && s.[i] <= 'z') || s.[i] = '_' then
      let j = ident_end i in
      j < n && s.[j] = ':'
    else false
  in
  component 0

let check_prefix ctx e =
  match e.pexp_desc with
  | Pexp_apply
      ( {
          pexp_desc =
            Pexp_ident
              {
                txt =
                  ( Longident.Lident (("invalid_arg" | "failwith") as fn)
                  | Longident.Ldot
                      ( Longident.Lident "Stdlib",
                        (("invalid_arg" | "failwith") as fn) ) );
                _;
              };
          _;
        },
        (_, arg) :: _ ) -> (
      match literal_prefix arg with
      | Some s when not (well_prefixed s) ->
          report ctx rule_prefix e.pexp_loc
            (Printf.sprintf
               "%s message %S lacks the 'Module.function: ' prefix used \
                across the codebase"
               fn s)
      | _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* catch-all                                                           *)

(* Does [e] reference the unqualified identifier [name]? Shadowing makes
   this an over-approximation of "the binder is used", which errs toward
   silence — the right direction for a gate. *)
let uses_ident name e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ }
            when String.equal n name ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !found

(* [Some None] for a wildcard, [Some (Some name)] for a bare variable
   binder, [None] for anything discriminating. *)
let rec pat_catch_all p =
  match p.ppat_desc with
  | Ppat_any -> Some None
  | Ppat_var { txt; _ } -> Some (Some txt)
  | Ppat_alias (inner, { txt; _ }) -> (
      match pat_catch_all inner with Some _ -> Some (Some txt) | None -> None)
  | _ -> None

(* A handler matching every exception hides injected faults,
   Out_of_memory and genuine bugs alike. Flag [try ... with _ ->] and
   handlers whose binder the body never looks at; a guard ([when ...])
   makes the case discriminating, so guarded cases pass. *)
let check_catch_all ctx e =
  if ctx.in_lib then begin
    let check_case ~unwrap (case : case) =
      if Option.is_none case.pc_guard then
        let p = unwrap case.pc_lhs in
        match p with
        | None -> ()
        | Some p -> (
            match pat_catch_all p with
            | Some None ->
                report ctx rule_catch_all p.ppat_loc
                  "catch-all handler 'with _ ->' swallows every exception \
                   (including Out_of_memory and injected faults); match the \
                   exceptions you expect or re-raise"
            | Some (Some name) when not (uses_ident name case.pc_rhs) ->
                report ctx rule_catch_all p.ppat_loc
                  (Printf.sprintf
                     "handler binds '%s' but never uses it, silently \
                      swallowing every exception; match the exceptions you \
                      expect or re-raise"
                     name)
            | _ -> ())
    in
    match e.pexp_desc with
    | Pexp_try (_, cases) -> List.iter (check_case ~unwrap:Option.some) cases
    | Pexp_match (_, cases) ->
        List.iter
          (check_case ~unwrap:(fun p ->
               match p.ppat_desc with
               | Ppat_exception inner -> Some inner
               | _ -> None))
          cases
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* raw-result-write                                                    *)

(* Result artifacts — BENCH_*.json and the golden snapshots — must be
   written through Runner.Atomic_file (temp file in the target dir +
   fsync + rename), so a crash or SIGKILL mid-write can never leave a
   torn file for CI or the test suite to consume. Flag direct
   [open_out]-family and [Out_channel] opens whose path argument is a
   string literal that is visibly such an artifact (ends in ".json" or
   mentions "golden"). Computed paths pass: the rule under-approximates
   rather than spam scratch-file writes. *)

let raw_write_fns = [ "open_out"; "open_out_bin"; "open_out_gen" ]

let out_channel_open_fns =
  [ "open_bin"; "open_text"; "open_gen"; "with_open_bin"; "with_open_text";
    "with_open_gen" ]

let raw_write_target f =
  match f.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with
      | [ fn ] | [ "Stdlib"; fn ] when List.mem fn raw_write_fns -> Some fn
      | [ "Out_channel"; fn ] | [ "Stdlib"; "Out_channel"; fn ]
        when List.mem fn out_channel_open_fns ->
          Some ("Out_channel." ^ fn)
      | _ -> None)
  | _ -> None

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else String.equal (String.sub hay i nn) needle || at (i + 1)
  in
  at 0

let result_artifact_path s =
  Filename.check_suffix s ".json"
  || contains_substring (String.lowercase_ascii s) "golden"

let check_raw_write ctx e =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
      match raw_write_target f with
      | None -> ()
      | Some fn ->
          List.iter
            (fun (_, arg) ->
              match arg.pexp_desc with
              | Pexp_constant (Pconst_string (s, _, _))
                when result_artifact_path s ->
                  report ctx rule_raw_write e.pexp_loc
                    (Printf.sprintf
                       "%s %S writes a result artifact directly; route it \
                        through Runner.Atomic_file so a crash cannot leave a \
                        torn file"
                       fn s)
              | _ -> ())
            args)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* mli-coverage (filesystem side; file-level suppression honoured)     *)

let check_mli ctx =
  if ctx.in_lib && Filename.check_suffix ctx.file ".ml" then
    if not (Sys.file_exists (ctx.file ^ "i")) then
      report ctx rule_mli
        {
          Location.none with
          loc_start = { Lexing.dummy_pos with pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
        }
        (Printf.sprintf "%s has no interface; add %si to pin the public API"
           (Filename.basename ctx.file)
           (Filename.basename ctx.file))

(* ------------------------------------------------------------------ *)
(* driver over one parsed structure                                    *)

let lint_structure ctx structure =
  (* file-level [@@@lint.allow] first, so it covers the whole file *)
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_attribute a ->
          validate_allow ctx [ a ];
          ctx.file_allowed <- allow_rules_of_attrs [ a ] @ ctx.file_allowed
      | _ -> ())
    structure;
  check_mli ctx;
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          validate_allow ctx e.pexp_attributes;
          let pushed = allow_rules_of_attrs e.pexp_attributes in
          ctx.stack <- pushed :: ctx.stack;
          check_float_eq ctx e;
          check_pool_call ctx e;
          check_nondet ctx e;
          check_prefix ctx e;
          check_catch_all ctx e;
          check_raw_write ctx e;
          Ast_iterator.default_iterator.expr self e;
          ctx.stack <- List.tl ctx.stack);
      value_binding =
        (fun self vb ->
          validate_allow ctx vb.pvb_attributes;
          let pushed = allow_rules_of_attrs vb.pvb_attributes in
          ctx.stack <- pushed :: ctx.stack;
          Ast_iterator.default_iterator.value_binding self vb;
          ctx.stack <- List.tl ctx.stack);
    }
  in
  it.structure it structure;
  List.rev ctx.findings

(* Floating [@@@lint.allow] attributes of an interface file: an .mli may
   carry the suppression for its module pair (documented in DESIGN.md
   §8), so the companion .ml inherits them. *)
let interface_allows ctx (signature : signature) =
  List.concat_map
    (fun item ->
      match item.psig_desc with
      | Psig_attribute a ->
          validate_allow ctx [ a ];
          allow_rules_of_attrs [ a ]
      | _ -> [])
    signature
