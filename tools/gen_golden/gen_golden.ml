(* Regenerates test/golden/fig_metrics.txt — the snapshot of the
   paper-facing numbers that the golden regression tests compare against
   (tolerance 1e-9). Run after an *intentional* change to the modeled
   figures:

     dune exec tools/gen_golden/gen_golden.exe -- -o test/golden/fig_metrics.txt

   With -o the snapshot is written atomically (temp file + fsync +
   rename), so an interrupted regeneration can never leave a torn
   golden file for the test suite to diff against; without -o it goes
   to stdout as before.

   Values are printed with %.17g (round-trip exact for doubles) and
   computed on a 1-domain pool; the test suite recomputes them on the
   shared default pool, so this file also locks down the determinism
   guarantee of the parallel sweep engine. *)

let buf = Buffer.create 4096
let line s = Buffer.add_string buf (s ^ "\n")
let pr key v = line (Printf.sprintf "%s %.17g" key v)

let generate () =
  let spec = Pll_lib.Design.default_spec in
  Parallel.Pool.with_pool ~domains:1 (fun pool ->
      line "# golden snapshot of paper-facing metrics; regenerate with";
      line
        "#   dune exec tools/gen_golden/gen_golden.exe -- -o \
         test/golden/fig_metrics.txt";
      (* Fig. 6 / Fig. 7 family: closed-loop bandwidth + peaking and the
         effective (time-varying) margins at the paper's ratios *)
      List.iter
        (fun ratio ->
          let sub = Pll_lib.Design.with_ratio spec ratio in
          let p = Pll_lib.Design.synthesize sub in
          let m = Pll_lib.Analysis.closed_loop_metrics ~pool p in
          let eff = Pll_lib.Analysis.effective_report p in
          let key fmt = Printf.sprintf "ratio_%g.%s" ratio fmt in
          pr (key "dc_mag") m.Pll_lib.Analysis.dc_mag;
          pr (key "peak_db") m.Pll_lib.Analysis.peak_db;
          pr (key "peak_freq") m.Pll_lib.Analysis.peak_freq;
          pr (key "bandwidth_3db")
            (Option.value ~default:Float.nan m.Pll_lib.Analysis.bandwidth_3db);
          pr (key "pm_eff_deg")
            (Option.value ~default:Float.nan
               eff.Pll_lib.Analysis.phase_margin_deg);
          pr (key "omega_ug_eff")
            (Option.value ~default:Float.nan eff.Pll_lib.Analysis.omega_ug))
        [ 0.05; 0.1; 0.2 ];
      (* Closed-loop rank-one kernel rows at n_harm = 20: pins the
         Sherman–Morrison closed form that the structured HTM evaluator
         must reproduce (test_htm_struct checks both against these) *)
      let p = Pll_lib.Design.synthesize spec in
      let w0 = Pll_lib.Pll.omega0 p in
      let ctx = Htm_core.Htm.ctx ~n_harm:20 ~omega0:w0 in
      let c0 = Htm_core.Htm.index_of_harmonic ctx 0 in
      List.iter
        (fun frac ->
          let s = Numeric.Cx.jomega (frac *. w0) in
          let m = Pll_lib.Pll.closed_loop_rank_one ctx p s in
          let key fmt = Printf.sprintf "cl_r1_n20_w%g.%s" frac fmt in
          pr (key "h00_re") (Numeric.Cx.re (Numeric.Cmat.get m c0 c0));
          pr (key "h00_im") (Numeric.Cx.im (Numeric.Cmat.get m c0 c0));
          pr (key "h10_re") (Numeric.Cx.re (Numeric.Cmat.get m (c0 + 1) c0));
          pr (key "h10_im") (Numeric.Cx.im (Numeric.Cmat.get m (c0 + 1) c0));
          pr (key "hm10_re") (Numeric.Cx.re (Numeric.Cmat.get m (c0 - 1) c0));
          pr (key "hm10_im") (Numeric.Cx.im (Numeric.Cmat.get m (c0 - 1) c0));
          pr (key "frobenius") (Numeric.Cmat.norm_frobenius m))
        [ 0.07; 0.2; 0.45 ];
      (* Planned grid evaluation at n_harm = 20: one compiled plan
         streamed over a 64-point log grid. Pins the plan/execute path
         (Plan.run_grid) point by point; test_grid diffs a fresh planned
         run against these rows, so any drift between the planned and
         the per-point evaluator shows up as a golden failure. *)
      let ss =
        Array.map Numeric.Cx.jomega
          (Numeric.Optimize.logspace (w0 *. 1e-3) (w0 *. 0.49) 64)
      in
      let plan = Pll_lib.Pll.closed_loop_plan ctx p in
      let h00s =
        Htm_core.Plan.run_grid_map plan
          (fun _ sm -> Htm_core.Smat.get sm c0 c0)
          ss
      in
      Array.iteri
        (fun i h ->
          pr (Printf.sprintf "grid_n20.p%d.re" i) (Numeric.Cx.re h);
          pr (Printf.sprintf "grid_n20.p%d.im" i) (Numeric.Cx.im h))
        h00s;
      (* one full-matrix checkpoint mid-grid: first sideband rows and the
         Frobenius norm of the realized HTM *)
      let sm = Htm_core.Plan.eval plan ss.(31) in
      pr "grid_n20.p31.h10_re" (Numeric.Cx.re (Htm_core.Smat.get sm (c0 + 1) c0));
      pr "grid_n20.p31.h10_im" (Numeric.Cx.im (Htm_core.Smat.get sm (c0 + 1) c0));
      pr "grid_n20.p31.hm10_re"
        (Numeric.Cx.re (Htm_core.Smat.get sm (c0 - 1) c0));
      pr "grid_n20.p31.hm10_im"
        (Numeric.Cx.im (Htm_core.Smat.get sm (c0 - 1) c0));
      pr "grid_n20.p31.frobenius"
        (Numeric.Cmat.norm_frobenius (Htm_core.Smat.to_cmat sm));
      (* Fig. 4: pulse-vs-impulse equivalence rows *)
      List.iter
        (fun r ->
          let key fmt =
            Printf.sprintf "fig4_w%g.%s" r.Experiments.Exp_fig4.width_frac fmt
          in
          pr (key "theta_pulse") r.Experiments.Exp_fig4.theta_pulse;
          pr (key "theta_impulse") r.Experiments.Exp_fig4.theta_impulse;
          pr (key "rel_err") r.Experiments.Exp_fig4.rel_err)
        (Experiments.Exp_fig4.compute ~spec ~pool ()))

let () =
  let out = ref None in
  let rec parse = function
    | [] -> ()
    | "-o" :: path :: rest ->
        out := Some path;
        parse rest
    | arg :: _ ->
        prerr_endline ("gen_golden: unknown argument " ^ arg ^ " (want -o FILE)");
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  generate ();
  match !out with
  | None -> print_string (Buffer.contents buf)
  | Some path ->
      Runner.Atomic_file.write_string path (Buffer.contents buf);
      Printf.eprintf "wrote %s\n" path
